package spyker

import (
	"fmt"
	"sort"

	"github.com/spyker-fl/spyker/internal/cluster"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
	"github.com/spyker-fl/spyker/internal/ring"
)

// Algorithm runs Spyker under the discrete-event simulator. It implements
// fl.Algorithm, and — when the environment carries a fault plan — the
// fault.Cluster control surface, so internal/fault can crash, checkpoint,
// restart, and rob servers of the token.
type Algorithm struct {
	// DisableDecay turns the learning-rate decay off (for the Fig. 11
	// ablation).
	DisableDecay bool

	servers []*simServer

	// homeOf maps every client to its current home server. Build seeds it
	// from the static placement; elastic membership changes (Join/Leave)
	// re-home clients by rewriting it, and the delivery glue routes each
	// update through it at delivery time, so updates already in flight
	// reach the client's new home.
	homeOf []int

	// faultsArmed is set when Env.Faults != nil. It switches the message
	// glue from pooled zero-copy buffers to plain owned copies (injected
	// drops and duplicates break the pool's exactly-once release
	// protocol) and enables the down/epoch guards. Disarmed runs take
	// exactly the pre-fault code paths.
	faultsArmed bool
	initial     []float64 // pristine t=0 model, the restart fallback
	tickPeriod  float64   // recovery tick period, 0 when recovery is off
}

var _ fl.Algorithm = (*Algorithm)(nil)

// Name implements fl.Algorithm.
func (a *Algorithm) Name() string {
	if a.DisableDecay {
		return "Spyker(no-decay)"
	}
	return "Spyker"
}

// simServer glues a ServerCore to the simulator: it owns the processing
// queue that models server occupancy and implements Outbound by sending
// messages through the geo network.
type simServer struct {
	env    *fl.Env
	alg    *Algorithm
	id     int
	cfg    Config
	core   *ServerCore
	queue  *fl.ProcQueue
	client map[int]*fl.SimClient

	// audit is this server's contribution audit plane (nil unless
	// Env.Audit armed it). It outlives core swaps: a restarted
	// incarnation keeps auditing with the same per-client history.
	audit *audit.Recorder

	// Failure-injection state, only touched when faultsArmed. down marks
	// a crashed server: arriving messages are discarded. left marks a
	// server that departed the ring for good (elastic Leave) — same
	// discard behaviour, but permanent. epoch counts crash/restart
	// transitions so work already sitting in the processing queue when
	// the crash hit is invalidated rather than applied to the restarted
	// incarnation. ckpt is the restart point (fault.Cluster Checkpoint),
	// and heardSince tracks which clients this incarnation has processed
	// an update from — the re-engagement pass skips them.
	down       bool
	left       bool
	epoch      int
	ckpt       State
	hasCkpt    bool
	heardSince map[int]bool
}

var _ Outbound = (*simServer)(nil)

// submit queues fn on the server's processing queue. With faults armed it
// adds the crash guards: a message reaching a down server is discarded,
// and queued work from before a crash is not applied to the restarted
// incarnation (its volatile queue died with it).
func (s *simServer) submit(proc float64, fn func()) {
	if !s.alg.faultsArmed {
		s.queue.Submit(proc, fn)
		return
	}
	if s.down || s.left {
		return
	}
	epoch := s.epoch
	s.queue.Submit(proc, func() {
		if s.down || s.left || s.epoch != epoch {
			return
		}
		fn()
	})
}

// Build implements fl.Algorithm.
func (a *Algorithm) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	n := len(env.Servers)
	initial := env.NewModel(env.Seed).Params()
	a.faultsArmed = env.Faults != nil
	a.initial = initial

	a.servers = make([]*simServer, n)
	for i := range a.servers {
		s := &simServer{
			env:    env,
			alg:    a,
			id:     i,
			queue:  fl.NewProcQueue(env.Sim, i, env.Observer),
			client: make(map[int]*fl.SimClient),
		}
		s.queue.Instrument(
			env.Metrics.Gauge(fmt.Sprintf("sim.server%d.queue_depth", i)),
			env.Metrics.Histogram(fmt.Sprintf("sim.server%d.queue_depth_dist", i), nil),
		)
		cfg := Config{
			ID:           i,
			NumServers:   n,
			NumClients:   len(env.Servers[i].Clients),
			EtaServer:    env.Hyper.EtaServer,
			Phi:          env.Hyper.Phi,
			EtaA:         env.Hyper.EtaA,
			HInter:       env.Hyper.HInter,
			HIntra:       env.Hyper.HIntra,
			ClientLR:     env.Hyper.ClientLR,
			DecayEnabled: env.Hyper.DecayEnabled && !a.DisableDecay,
			Beta:         env.Hyper.Beta,
			EtaMin:       env.Hyper.EtaMin,

			RobustClipFactor: env.Hyper.RobustClipFactor,

			TokenTimeout: env.Hyper.TokenTimeout,
			SyncRetry:    env.Hyper.SyncRetry,
		}
		s.cfg = cfg
		if a.faultsArmed {
			s.heardSince = make(map[int]bool)
		}
		s.core = NewServerCore(cfg, initial, i == 0, s)
		s.core.Instrument(env.Trace, env.Sim.Now)
		if env.Audit != nil {
			s.audit = audit.NewRecorder(*env.Audit, i, env.Trace)
			s.core.ArmAudit(s.audit)
		}
		a.servers[i] = s
	}
	a.scheduleTicks(env)

	// Create the clients and hand every one the initial model at time 0
	// (clients begin training immediately, as in the paper's emulation).
	// Updates route through homeOf at delivery time, not through the
	// server captured at build time: elastic membership changes re-home
	// clients mid-run, and an update already in flight must land at the
	// client's current home.
	a.homeOf = make([]int, len(env.Clients))
	for ci := range env.Clients {
		spec := env.Clients[ci]
		a.homeOf[ci] = spec.Server
		c := &fl.SimClient{
			Env:         env,
			Spec:        spec,
			Model:       env.NewModel(env.Seed + int64(1000+ci)),
			CopyUpdates: a.faultsArmed,
			Deliver: func(clientID int, update []float64, meta any, uid obs.UID) {
				age, ok := meta.(float64)
				if !ok {
					panic(fmt.Sprintf("spyker: client meta %T is not an age", meta))
				}
				srv := a.servers[a.homeOf[clientID]]
				srv.submit(env.ProcFor(srv.id, env.Hyper.ProcSpyker), func() {
					srv.core.HandleClientUpdateTraced(clientID, update, age, uid)
					if srv.heardSince != nil {
						srv.heardSince[clientID] = true
					}
					env.Observer.ClientUpdateProcessed(
						env.Sim.Now(), srv.id, clientID, a.ServerParams)
				})
			},
		}
		a.servers[spec.Server].client[ci] = c
		c.HandleModel(initial, float64(0), env.Hyper.ClientLR)
	}
	return nil
}

// scheduleTicks drives ServerCore.Tick for the recovery timers. Nothing
// is scheduled when both timeouts are off, so a recovery-disabled run's
// event schedule is byte-identical to one predating this extension. The
// tick period quarters the tightest timeout (detection latency at most
// 1.25× the configured window), and the first tick of each server is
// staggered by one period/n so simultaneous survivors do not all
// regenerate in the same instant.
func (a *Algorithm) scheduleTicks(env *fl.Env) {
	period := env.Hyper.TokenTimeout
	if r := env.Hyper.SyncRetry; r > 0 && (period == 0 || r < period) {
		period = r
	}
	if period <= 0 {
		return
	}
	a.tickPeriod = period / 4
	n := len(a.servers)
	for _, s := range a.servers {
		a.scheduleTickFor(env, s, a.tickPeriod*(1+float64(s.id)/float64(n)))
	}
}

// scheduleTickFor starts one server's recurring recovery tick after the
// given initial delay (relative to now). Joined servers get their own
// tick loop with the same stagger rule, computed over the ring size at
// join time; a departed server's loop winds down at its next firing.
func (a *Algorithm) scheduleTickFor(env *fl.Env, s *simServer, first float64) {
	var tick func()
	tick = func() {
		if s.left {
			return
		}
		if !s.down {
			s.core.Tick(env.Sim.Now())
		}
		env.Sim.Schedule(a.tickPeriod, tick)
	}
	env.Sim.Schedule(first, tick)
}

// reengageGrace is how long a restarted server waits before re-sending
// its model to clients it has not heard from. The grace period lets
// updates that were already in flight at restart land first, so their
// clients are not handed a second concurrent training loop. One virtual
// second comfortably exceeds any link latency plus queueing in the
// modeled deployments.
const reengageGrace = 1.0

// NumServers implements fault.Cluster.
func (a *Algorithm) NumServers() int { return len(a.servers) }

// TokenHolder implements fault.Cluster: the live server currently
// holding the token, or -1 when the token is in flight or lost.
func (a *Algorithm) TokenHolder() int {
	for i, s := range a.servers {
		if !s.down && !s.left && s.core.HasToken() {
			return i
		}
	}
	return -1
}

// Checkpoint implements fault.Cluster: snapshot server i's protocol
// state as its restart point. A down server cannot checkpoint.
func (a *Algorithm) Checkpoint(i int) {
	s := a.servers[i]
	if s.down || s.left {
		return
	}
	s.core.SnapshotInto(&s.ckpt)
	s.hasCkpt = true
}

// Crash implements fault.Cluster: server i loses its volatile state —
// queued work, and the token if it held one — and discards every message
// addressed to it until Restart.
func (a *Algorithm) Crash(i int) {
	s := a.servers[i]
	if s.down || s.left {
		return
	}
	s.down = true
	s.epoch++
}

// Restart implements fault.Cluster: server i comes back from its latest
// checkpoint (or from the pristine initial model if it never took one)
// and, after a short grace period, re-engages every client it has not
// heard from — their updates died with the crash, so without a fresh
// model their training loops would stay parked forever.
func (a *Algorithm) Restart(i int) {
	s := a.servers[i]
	if !s.down || s.left {
		return
	}
	if s.hasCkpt {
		core, err := RestoreServerCore(s.ckpt, s)
		if err != nil {
			panic(fmt.Sprintf("spyker: restart server %d: %v", i, err))
		}
		s.core = core
	} else {
		s.core = NewServerCore(s.cfg, a.initial, false, s)
	}
	s.core.Instrument(s.env.Trace, s.env.Sim.Now)
	if s.audit != nil {
		s.core.ArmAudit(s.audit)
	}
	s.down = false
	s.epoch++
	clear(s.heardSince)
	epoch := s.epoch
	s.env.Sim.Schedule(reengageGrace, func() {
		if s.down || s.epoch != epoch {
			return
		}
		ids := make([]int, 0, len(s.client))
		//lint:sorted keys are collected and sorted just below
		for ci := range s.client {
			ids = append(ids, ci)
		}
		sort.Ints(ids)
		for _, ci := range ids {
			if !s.heardSince[ci] {
				s.core.ReengageClient(ci)
			}
		}
	})
}

// DropToken implements fault.Cluster: discard the token if server i
// holds it, reporting whether it did.
func (a *Algorithm) DropToken(i int) bool {
	s := a.servers[i]
	if s.down || s.left {
		return false
	}
	return s.core.DropToken()
}

// Join implements fault.Elastic: a new server joins the ring, sponsored
// by an existing member (the sponsor hands over its model and age
// knowledge and announces the epoch bump). Returns the new server's
// stable ID, or -1 if no live sponsor exists. Half of the sponsor's
// clients are re-homed to the newcomer — the scale-out scenario the
// elastic study measures: a hot region splits its load.
func (a *Algorithm) Join(sponsor int) int {
	if sponsor < 0 || sponsor >= len(a.servers) ||
		a.servers[sponsor].down || a.servers[sponsor].left {
		// Fall back to the lowest live member; a plan event may name a
		// sponsor that has crashed or departed since the plan was written.
		sponsor = -1
		for i, s := range a.servers {
			if !s.down && !s.left {
				sponsor = i
				break
			}
		}
		if sponsor < 0 {
			return -1
		}
	}
	sp := a.servers[sponsor]
	env := sp.env
	newID := len(a.servers)

	// The newcomer shares the sponsor's region: the scale-out scenario
	// adds capacity where the load is, and keeping the region fixed makes
	// the DES comparison against a fixed larger ring apples-to-apples.
	env.Servers = append(env.Servers, fl.ServerSpec{ID: newID, Region: env.Servers[sponsor].Region})
	ns := &simServer{
		env:    env,
		alg:    a,
		id:     newID,
		queue:  fl.NewProcQueue(env.Sim, newID, env.Observer),
		client: make(map[int]*fl.SimClient),
	}
	ns.queue.Instrument(
		env.Metrics.Gauge(fmt.Sprintf("sim.server%d.queue_depth", newID)),
		env.Metrics.Histogram(fmt.Sprintf("sim.server%d.queue_depth_dist", newID), nil),
	)
	if a.faultsArmed {
		ns.heardSince = make(map[int]bool)
	}
	// The shell must be registered before AdmitMember: the sponsor's
	// membership announcement fans out to a.servers, and the newcomer's
	// queue has to exist to receive it (the announcement lands after the
	// core below is installed — network latency is strictly positive).
	a.servers = append(a.servers, ns)

	st, err := sp.core.AdmitMember(newID)
	if err != nil {
		panic(fmt.Sprintf("spyker: join via sponsor %d: %v", sponsor, err))
	}
	ns.cfg = st.Config
	core, err := RestoreServerCore(st, ns)
	if err != nil {
		panic(fmt.Sprintf("spyker: bootstrap joined server %d: %v", newID, err))
	}
	ns.core = core
	core.Instrument(env.Trace, env.Sim.Now)
	if env.Audit != nil {
		ns.audit = audit.NewRecorder(*env.Audit, newID, env.Trace)
		core.ArmAudit(ns.audit)
	}
	if a.tickPeriod > 0 {
		a.scheduleTickFor(env, ns, a.tickPeriod*(1+float64(newID)/float64(len(a.servers))))
	}

	// Split the sponsor's client population: every second client (in
	// stable ID order) moves to the newcomer. Both are in the same
	// region, so nearest-server placement degenerates to alternation —
	// the balanced split.
	ids := make([]int, 0, len(sp.client))
	//lint:sorted keys are collected and sorted just below
	for ci := range sp.client {
		ids = append(ids, ci)
	}
	sort.Ints(ids)
	for idx, ci := range ids {
		if idx%2 == 1 {
			a.rehome(ci, newID)
		}
	}
	sp.core.SetNumClients(len(sp.client))
	core.SetNumClients(len(ns.client))
	return newID
}

// Leave implements fault.Elastic: target departs the ring for good. The
// token is handed to the ring successor if target holds it idle (dropped
// if mid-round — TokenTimeout recovery then heals), a surviving member
// announces the epoch bump excluding target, and target's clients are
// re-homed to their nearest surviving servers (balanced, by modeled AWS
// latency). Returns false when target is already gone or it is the last
// live server.
func (a *Algorithm) Leave(target int) bool {
	if target < 0 || target >= len(a.servers) {
		return false
	}
	t := a.servers[target]
	if t.down || t.left {
		return false
	}
	coord := -1
	for i, s := range a.servers {
		if i != target && !s.down && !s.left {
			coord = i
			break
		}
	}
	if coord < 0 {
		return false
	}
	// Graceful hand-off while target is still live: an idle token rides
	// to the successor, a mid-round one is dropped and regenerated by the
	// survivors' timeout.
	if t.core.HasToken() && !t.core.YieldToken() {
		t.core.DropToken()
	}
	t.left = true
	t.epoch++
	a.servers[coord].core.ExcludeMember(target)

	// Re-home target's clients to the nearest surviving servers,
	// balanced by current load (the same placement heuristic the static
	// geo assignment uses).
	ids := make([]int, 0, len(t.client))
	//lint:sorted keys are collected and sorted just below
	for ci := range t.client {
		ids = append(ids, ci)
	}
	sort.Ints(ids)
	if len(ids) > 0 {
		env := t.env
		survivors := make([]int, 0, len(a.servers))
		load := make(map[int]int, len(a.servers))
		for i, s := range a.servers {
			if !s.down && !s.left {
				survivors = append(survivors, i)
				load[i] = len(s.client)
			}
		}
		regions := make([]geo.Region, len(ids))
		for i, ci := range ids {
			regions[i] = env.Clients[ci].Region
		}
		assign := cluster.NearestBalanced(regions, survivors,
			func(s int) geo.Region { return env.Servers[s].Region },
			geo.AWSLatency, load)
		movedTo := make(map[int][]int, len(survivors))
		for i, ci := range ids {
			a.rehome(ci, assign[i])
			movedTo[assign[i]] = append(movedTo[assign[i]], ci)
		}
		for _, si := range survivors {
			a.servers[si].core.SetNumClients(len(a.servers[si].client))
		}
		// Updates the moved clients had in flight toward target died with
		// its departure (the left guard discards them), so after a grace
		// period each new home re-engages the movers it has not heard
		// from — mirroring the crash-restart re-engagement pass.
		for _, si := range survivors {
			moved := movedTo[si]
			if len(moved) == 0 {
				continue
			}
			s := a.servers[si]
			epoch := s.epoch
			env.Sim.Schedule(reengageGrace, func() {
				if s.down || s.left || s.epoch != epoch {
					return
				}
				for _, ci := range moved {
					if !s.heardSince[ci] && a.homeOf[ci] == si {
						s.core.ReengageClient(ci)
					}
				}
			})
		}
	}
	return true
}

// rehome moves client ci to server to: the client actor keeps running,
// only its home pointer changes, and in-flight updates follow via the
// homeOf indirection in the delivery glue.
func (a *Algorithm) rehome(ci, to int) {
	from := a.homeOf[ci]
	if from == to {
		return
	}
	src := a.servers[from]
	dst := a.servers[to]
	c := src.client[ci]
	if c == nil {
		return
	}
	delete(src.client, ci)
	delete(src.heardSince, ci)
	dst.client[ci] = c
	c.Spec.Server = to
	a.homeOf[ci] = to
}

// ServerParams returns the live parameter vectors of every server model;
// used by observers to evaluate global progress.
func (a *Algorithm) ServerParams() [][]float64 {
	out := make([][]float64, len(a.servers))
	for i, s := range a.servers {
		out[i] = s.core.Params()
	}
	return out
}

// Servers exposes the server cores for white-box tests and diagnostics.
func (a *Algorithm) Servers() []*ServerCore {
	out := make([]*ServerCore, len(a.servers))
	for i, s := range a.servers {
		out[i] = s.core
	}
	return out
}

// ReplyClient implements Outbound. params is a borrow of the core's live
// model (see the Outbound contract), so it is copied into a pooled buffer
// that the delivery closure returns once the client has consumed it.
func (s *simServer) ReplyClient(k int, params []float64, age, lr float64) {
	src := s.env.ServerEndpoint(s.id)
	dst := s.env.ClientEndpoint(k)
	c := s.client[k]
	if c == nil {
		// The client was re-homed away between the update's arrival and
		// this reply (elastic membership); its new home will engage it.
		return
	}
	if s.alg.faultsArmed {
		// Owned copy instead of a pooled buffer: an injected duplicate
		// would release the pooled buffer twice, an injected drop never.
		own := append([]float64(nil), params...)
		s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
			c.HandleModel(own, age, lr)
		})
		return
	}
	buf := s.env.Pool.Get(len(params))
	buf.CopyFrom(params)
	s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
		// HandleModel copies the vector into the client model before it
		// returns (the trained update it schedules is a view of the model,
		// not of buf), so the buffer can be recycled immediately after.
		c.HandleModel(buf, age, lr)
		s.env.Pool.Put(buf)
	})
}

// BroadcastModel implements Outbound. One pooled copy of the borrowed
// params is shared by every peer delivery; a countdown (safe because the
// simulator is single-threaded) returns it after the last peer consumed
// the model. The frontier is also copied once at broadcast time: delivery
// happens later in virtual time, while the origin's live frontier keeps
// advancing, so aliasing it would corrupt the causal snapshot the
// broadcast carries.
func (s *simServer) BroadcastModel(params []float64, age float64, bid int, front []int64, mem ring.Membership) {
	src := s.env.ServerEndpoint(s.id)
	if s.alg.faultsArmed {
		// One owned copy shared read-only by every peer delivery; the
		// pooled countdown protocol is unsound under injected drops and
		// duplicates (see ReplyClient), so faulty runs let the GC own it.
		// mem needs no copy: Membership slices are immutable (ring
		// package contract).
		own := append([]float64(nil), params...)
		frontOwn := append([]int64(nil), front...)
		uid := obs.RoundUID(s.id, bid)
		for _, peer := range s.alg.servers {
			if peer.id == s.id {
				continue
			}
			p := peer
			dst := s.env.ServerEndpoint(p.id)
			s.env.Net.SendTraced(src, dst, s.env.ModelBytes, geo.ServerServer, uid, func() {
				p.submit(s.env.ProcFor(p.id, s.env.Hyper.ProcSpyker), func() {
					p.core.HandleServerModelTraced(s.id, own, age, bid, frontOwn, mem)
				})
			})
		}
		return
	}
	buf := s.env.Pool.Get(len(params))
	buf.CopyFrom(params)
	frontCopy := append([]int64(nil), front...)
	uid := obs.RoundUID(s.id, bid)
	remaining := len(s.alg.servers) - 1
	if remaining <= 0 {
		s.env.Pool.Put(buf)
		return
	}
	for _, peer := range s.alg.servers {
		if peer.id == s.id {
			continue
		}
		p := peer
		dst := s.env.ServerEndpoint(p.id)
		s.env.Net.SendTraced(src, dst, s.env.ModelBytes, geo.ServerServer, uid, func() {
			p.queue.Submit(s.env.ProcFor(p.id, s.env.Hyper.ProcSpyker), func() {
				p.core.HandleServerModelTraced(s.id, buf, age, bid, frontCopy, mem)
				if remaining--; remaining == 0 {
					s.env.Pool.Put(buf)
				}
			})
		})
	}
}

// BroadcastAge implements Outbound.
func (s *simServer) BroadcastAge(age float64, mem ring.Membership) {
	src := s.env.ServerEndpoint(s.id)
	for _, peer := range s.alg.servers {
		if peer.id == s.id {
			continue
		}
		p := peer
		dst := s.env.ServerEndpoint(p.id)
		s.env.Net.Send(src, dst, fl.AgeWireBytes, geo.ServerServer, func() {
			p.submit(0, func() {
				p.core.HandleAgeTagged(s.id, age, mem)
			})
		})
	}
}

// SendToken implements Outbound. The token carries the bid of the sync
// round it is brokering, so the hop is traced under that round's UID.
func (s *simServer) SendToken(t Token, next int) {
	src := s.env.ServerEndpoint(s.id)
	dst := s.env.ServerEndpoint(next)
	peer := s.alg.servers[next]
	uid := obs.RoundUID(s.id, t.Bid)
	s.env.Net.SendTraced(src, dst, fl.TokenWireBytes(len(t.Ages)), geo.ServerServer, uid, func() {
		peer.submit(0, func() {
			peer.core.HandleToken(t)
		})
	})
}
