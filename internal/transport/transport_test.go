package transport

import (
	"sync"
	"testing"

	"github.com/spyker-fl/spyker/internal/obs"
)

func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = r.c.Close()
	})
	return client, r.c
}

func TestRoundTripAllKinds(t *testing.T) {
	client, server := pipePair(t)
	msgs := []*Msg{
		{Kind: KindHello, From: 3, Bid: 1},
		{Kind: KindClientUpdate, From: 3, Params: []float64{1.5, -2.5}, Age: 7},
		{Kind: KindModelReply, From: 0, Params: []float64{0.1}, Age: 8, LR: 0.05},
		{Kind: KindServerModel, From: 1, Params: []float64{9}, Age: 100.5, Bid: 4},
		{Kind: KindAge, From: 2, Age: 55},
		{Kind: KindToken, From: 0, Bid: 9, Ages: []float64{1, 2, 3}},
		{Kind: KindShutdown, From: 0},
	}
	go func() {
		for _, m := range msgs {
			if err := client.Send(m); err != nil {
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.From != want.From || got.Age != want.Age ||
			got.LR != want.LR || got.Bid != want.Bid {
			t.Fatalf("got %+v, want %+v", got, want)
		}
		if len(got.Params) != len(want.Params) || len(got.Ages) != len(want.Ages) {
			t.Fatalf("payload lengths differ: %+v vs %+v", got, want)
		}
		for i := range want.Params {
			if got.Params[i] != want.Params[i] {
				t.Fatal("params corrupted")
			}
		}
	}
}

func TestConcurrentSendsDoNotInterleave(t *testing.T) {
	client, server := pipePair(t)
	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				m := &Msg{Kind: KindAge, From: g, Age: float64(i)}
				if err := client.Send(m); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	next := make(map[int]float64)
	for i := 0; i < 4*n; i++ {
		m, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != KindAge {
			t.Fatalf("corrupted frame: %+v", m)
		}
		// Per-sender FIFO: ages from one goroutine arrive in order.
		if m.Age != next[m.From] {
			t.Fatalf("sender %d out of order: got %v want %v", m.From, m.Age, next[m.From])
		}
		next[m.From]++
	}
	wg.Wait()
}

func TestRecvAfterCloseFails(t *testing.T) {
	client, server := pipePair(t)
	_ = client.Close()
	if _, err := server.Recv(); err == nil {
		t.Error("Recv on closed peer should fail")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindHello, KindClientUpdate, KindModelReply,
		KindServerModel, KindAge, KindToken, KindShutdown}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("Kind %d has empty name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind String")
	}
}

// TestLargeModelPayload pushes a realistic full-size model frame (100k
// float64 parameters, ~800 KB) through the gob framing.
func TestLargeModelPayload(t *testing.T) {
	client, server := pipePair(t)
	params := make([]float64, 100_000)
	for i := range params {
		params[i] = float64(i) * 0.001
	}
	go func() {
		_ = client.Send(&Msg{Kind: KindServerModel, From: 1, Params: params, Age: 5, Bid: 2})
	}()
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != len(params) {
		t.Fatalf("payload truncated: %d of %d", len(got.Params), len(params))
	}
	for _, i := range []int{0, 1, 50_000, 99_999} {
		if got.Params[i] != params[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

// TestMsgWireBytes pins the byte-accounting model: fixed overhead plus
// 8 bytes per float64 across both vector fields.
func TestMsgWireBytes(t *testing.T) {
	cases := []struct {
		m    Msg
		want int
	}{
		{Msg{Kind: KindHello, From: 3}, 40},
		{Msg{Kind: KindClientUpdate, Params: make([]float64, 10)}, 40 + 80},
		{Msg{Kind: KindToken, Ages: make([]float64, 4)}, 40 + 32},
		{Msg{Kind: KindServerModel, Params: make([]float64, 5), Ages: make([]float64, 2)}, 40 + 56},
		{Msg{Kind: KindServerModel, Params: make([]float64, 5),
			Trace: Trace{Front: make([]int64, 4)}}, 40 + 40 + 32},
	}
	for _, c := range cases {
		if got := MsgWireBytes(&c.m); got != c.want {
			t.Errorf("MsgWireBytes(%v) = %d, want %d", c.m.Kind, got, c.want)
		}
	}
}

// TestTraceRoundTrip checks that the causal trace context survives the
// gob framing, that Reset clears it between decodes (no leakage from a
// traced frame into an untraced one), and that untraced frames decode
// with a zero Trace.
func TestTraceRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	msgs := []*Msg{
		{Kind: KindClientUpdate, From: 3, Params: []float64{1, 2}, Age: 7,
			Trace: Trace{UID: obs.UpdateUID(3, 9)}},
		{Kind: KindServerModel, From: 1, Params: []float64{9}, Age: 5, Bid: 4,
			Trace: Trace{UID: obs.RoundUID(1, 4), Front: []int64{12, 7, 0}}},
		{Kind: KindAge, From: 2, Age: 55}, // untraced
	}
	go func() {
		for _, m := range msgs {
			if err := client.Send(m); err != nil {
				return
			}
		}
	}()
	var m Msg
	for _, want := range msgs {
		if err := server.RecvInto(&m); err != nil {
			t.Fatal(err)
		}
		if m.Trace.UID != want.Trace.UID {
			t.Fatalf("%v: trace uid = %v, want %v", want.Kind, m.Trace.UID, want.Trace.UID)
		}
		if len(m.Trace.Front) != len(want.Trace.Front) {
			t.Fatalf("%v: trace front = %v, want %v (Reset must clear it between frames)",
				want.Kind, m.Trace.Front, want.Trace.Front)
		}
		for i := range want.Trace.Front {
			if m.Trace.Front[i] != want.Trace.Front[i] {
				t.Fatalf("%v: trace front corrupted: %v", want.Kind, m.Trace.Front)
			}
		}
	}
}

func TestResetClearsTrace(t *testing.T) {
	m := Msg{
		Kind: KindServerModel, From: 1, Params: []float64{1}, Bid: 2,
		Trace: Trace{UID: obs.RoundUID(1, 2), Front: []int64{5, 5}},
	}
	m.Reset()
	if m.Trace.UID != 0 || len(m.Trace.Front) != 0 {
		t.Fatalf("Reset left trace context: %+v", m.Trace)
	}
	// The Front backing array must be retained for reuse (like Params).
	if cap(m.Trace.Front) == 0 {
		t.Fatal("Reset dropped the Front backing array")
	}
}

// TestConnStats checks that Send/Recv maintain the frame and byte
// counters symmetrically on both ends of a connection.
func TestConnStats(t *testing.T) {
	client, server := pipePair(t)
	msgs := []*Msg{
		{Kind: KindHello, From: 1},
		{Kind: KindClientUpdate, From: 1, Params: make([]float64, 16), Age: 2},
		{Kind: KindToken, From: 0, Ages: make([]float64, 3)},
	}
	wantBytes := int64(0)
	for _, m := range msgs {
		wantBytes += int64(MsgWireBytes(m))
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	cs, ss := client.Stats(), server.Stats()
	if cs.FramesSent != int64(len(msgs)) || cs.BytesSent != wantBytes {
		t.Errorf("client sent stats = %+v, want %d frames / %d bytes", cs, len(msgs), wantBytes)
	}
	if ss.FramesRecv != int64(len(msgs)) || ss.BytesRecv != wantBytes {
		t.Errorf("server recv stats = %+v, want %d frames / %d bytes", ss, len(msgs), wantBytes)
	}
	if cs.FramesRecv != 0 || ss.FramesSent != 0 {
		t.Errorf("unused directions should be zero: client %+v server %+v", cs, ss)
	}
}
