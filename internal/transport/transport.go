// Package transport implements the wire protocol of the live (non
// simulated) Spyker runtime: length-delimited gob frames over TCP. It
// carries exactly the message vocabulary of the Spyker protocol — client
// updates, model replies, server-model broadcasts, age announcements, and
// the token.
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/spyker-fl/spyker/internal/obs"
)

// Kind discriminates protocol messages.
type Kind int

// Protocol message kinds.
const (
	// KindHello registers a client with its server (From = client ID).
	KindHello Kind = iota + 1
	// KindClientUpdate carries a trained model from client to server.
	KindClientUpdate
	// KindModelReply carries the new server model back to a client.
	KindModelReply
	// KindServerModel is a server-to-server model broadcast.
	KindServerModel
	// KindAge announces a server's model age.
	KindAge
	// KindToken passes the synchronization token.
	KindToken
	// KindShutdown tells a client to stop training and disconnect.
	KindShutdown
	// KindJoinRequest asks a running server to sponsor the sender into
	// the ring (From is unset; Addrs[0] is the joiner's listen address).
	KindJoinRequest
	// KindJoinReply answers a join request: Bid carries the assigned
	// server ID, Epoch/Members/Addrs the post-admission membership and
	// address book, and Blob a gob-encoded spyker.State snapshot re-keyed
	// for the newcomer.
	KindJoinReply
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindClientUpdate:
		return "client-update"
	case KindModelReply:
		return "model-reply"
	case KindServerModel:
		return "server-model"
	case KindAge:
		return "age"
	case KindToken:
		return "token"
	case KindShutdown:
		return "shutdown"
	case KindJoinRequest:
		return "join-request"
	case KindJoinReply:
		return "join-reply"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Trace is the causal provenance context riding on a frame. UID identifies
// the client update (KindClientUpdate) or sync-round broadcast
// (KindServerModel, KindToken) the frame carries; Front is the sender's
// merged-updates frontier snapshot (KindServerModel only). A zero Trace is
// "untraced" and — because gob omits zero-valued fields — costs nothing on
// the wire, so peers predating the provenance extension interoperate
// unchanged.
type Trace struct {
	UID   obs.UID
	Front []int64
}

// Msg is one protocol frame. Which fields are meaningful depends on Kind.
type Msg struct {
	Kind   Kind
	From   int       // sender ID (client or server, per Kind)
	Params []float64 // model parameters
	Age    float64   // model age
	LR     float64   // next client learning rate (KindModelReply)
	Bid    int       // synchronization ID (KindServerModel, KindToken)
	Ages   []float64 // token age vector (KindToken)
	Trace  Trace     // causal provenance context (optional)

	// Elastic-membership header. Epoch/Members version the sender's view
	// of the server ring (server-to-server kinds); Addrs carries the
	// sender's address book aligned with Members so receivers can dial
	// newly admitted peers; Blob is an opaque payload (KindJoinReply
	// carries a gob-encoded state snapshot in it). A zero header — the
	// pre-elastic wire format — costs nothing under gob.
	Epoch   int
	Members []int
	Addrs   []string
	Blob    []byte
}

// Reset clears the message for reuse as a gob decode target. Gob leaves
// fields absent from the wire untouched, so every field must be zeroed
// here or a previous frame's value would leak into the next. Params keeps
// its backing array (truncated to length 0) so repeated decodes on a
// connection reuse one buffer; Ages is dropped entirely because token
// receivers retain the decoded slice (spyker.ServerCore.HandleToken
// stores it), so it must never be overwritten by a later decode.
// Trace.Front keeps its backing array like Params: the frontier is merged
// into the receiving core before the next decode, never retained.
// Members is dropped like Ages: token receivers retain the decoded
// membership slice (it becomes Token.Mem.Members, which ServerCore
// stores), so a later decode must never scribble over it. Addrs and
// Blob are dropped for the same reason (the address book and join
// snapshot outlive the frame).
func (m *Msg) Reset() {
	m.Kind = 0
	m.From = 0
	m.Params = m.Params[:0]
	m.Age = 0
	m.LR = 0
	m.Bid = 0
	m.Ages = nil
	m.Trace.UID = 0
	m.Trace.Front = m.Trace.Front[:0]
	m.Epoch = 0
	m.Members = nil
	m.Addrs = nil
	m.Blob = nil
}

// MsgWireBytes estimates the payload size of a message in bytes: the
// float64 vectors dominate, plus a small fixed overhead for the scalar
// fields and gob framing. It deliberately ignores gob's type-descriptor
// preamble (sent once per connection), so the estimate is stable per
// frame — what byte accounting wants.
func MsgWireBytes(m *Msg) int {
	n := 40 + 8*(len(m.Params)+len(m.Ages)+len(m.Trace.Front)+len(m.Members)) + len(m.Blob)
	for _, a := range m.Addrs {
		n += len(a)
	}
	return n
}

// ConnStats is a snapshot of a connection's frame and byte accounting.
// Bytes are MsgWireBytes estimates, not TCP-level octets.
type ConnStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
}

// Sender is the writable half of a connection — what outboxes and fault
// injectors need. *Conn implements it; internal/fault wraps one to
// interpose drop/delay/sever faults between a server and the wire.
type Sender interface {
	Send(m *Msg) error
	Close() error
}

// Conn is a gob-framed connection. Send is safe for concurrent use;
// Recv must be driven from a single reader goroutine.
type Conn struct {
	raw net.Conn
	enc *gob.Encoder //spyker:guardedby(mu)
	dec *gob.Decoder
	mu  sync.Mutex

	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
}

// NewConn wraps an established net.Conn.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// Dial connects to addr over TCP.
func Dial(addr string) (*Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Send encodes one message.
func (c *Conn) Send(m *Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: send %v: %w", m.Kind, err)
	}
	c.framesSent.Add(1)
	c.bytesSent.Add(int64(MsgWireBytes(m)))
	return nil
}

// Recv decodes the next message into a fresh Msg.
func (c *Conn) Recv() (*Msg, error) {
	var m Msg
	if err := c.RecvInto(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// RecvInto decodes the next message into m, reusing m's Params backing
// array when its capacity suffices — the allocation-free receive path for
// a long-lived reader loop. m is Reset first, so any Msg (including one
// holding a previous frame) is a valid target. (Steady-state gob decodes
// into a capacious Msg allocate nothing; growth on the first frames is
// gob's, inside Decode.)
//
//spyker:noalloc
func (c *Conn) RecvInto(m *Msg) error {
	m.Reset()
	if err := c.dec.Decode(m); err != nil {
		return err
	}
	c.framesRecv.Add(1)
	c.bytesRecv.Add(int64(MsgWireBytes(m)))
	return nil
}

// Stats reports the connection's cumulative frame/byte accounting. Safe
// for concurrent use with Send and Recv.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		FramesSent: c.framesSent.Load(),
		FramesRecv: c.framesRecv.Load(),
		BytesSent:  c.bytesSent.Load(),
		BytesRecv:  c.bytesRecv.Load(),
	}
}

// Close closes the underlying connection; pending Recv calls fail.
func (c *Conn) Close() error { return c.raw.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() string { return c.raw.RemoteAddr().String() }

// Listener accepts gob-framed connections.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener on addr ("127.0.0.1:0" for an ephemeral
// test port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr reports the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	raw, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(raw), nil
}

// Close stops the listener; pending Accept calls fail.
func (l *Listener) Close() error { return l.l.Close() }
