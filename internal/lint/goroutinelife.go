package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// goroutinelife enforces that every goroutine launched in the runtime
// packages (Config.RuntimePkgs) is tied to a shutdown mechanism, so
// the live server's rewiring, reconnect, and drain goroutines cannot
// leak across reconfigurations. A `go` statement is tied when one of
// these holds:
//
//   - its body calls Done on a sync.WaitGroup that some function in
//     the package visibly Waits on;
//   - its body receives from (or ranges over, or selects on) a channel
//     it did not create itself — a captured done/stop channel, a
//     message channel closed by the owner, a ctx.Done();
//   - the body contains no loop at all: it runs a bounded sequence of
//     statements and exits by construction;
//   - the statement carries a //spyker:detached(reason) waiver on its
//     line or the line above, with a non-empty reason.
//
// A `go f(...)` call to a named function declared in the same package
// is judged by that function's body under the same rules.
var detachedRe = regexp.MustCompile(`^//spyker:detached\(([^)]*)\)`)

func runGoroutineLife(cfg *Config, pkg *Package) []Diagnostic {
	if !hasPkgSuffix(pkg.ImportPath, cfg.RuntimePkgs) {
		return nil
	}
	gl := &lifeChecker{pkg: pkg, funcs: map[*types.Func]*ast.FuncDecl{}}
	gl.collectFuncs()
	waitedOn := gl.collectWaits()

	for _, file := range pkg.Files {
		waivers := detachedWaivers(pkg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			line := pkg.Fset.Position(gs.Pos()).Line
			if reason, waived := waivers[line]; waived {
				if strings.TrimSpace(reason) == "" {
					gl.diags = append(gl.diags, pkg.diag("goroutinelife", "bad-waiver", gs.Pos(),
						"//spyker:detached waiver needs a non-empty reason"))
				}
				return true
			}
			if reason, waived := waivers[line-1]; waived {
				if strings.TrimSpace(reason) == "" {
					gl.diags = append(gl.diags, pkg.diag("goroutinelife", "bad-waiver", gs.Pos(),
						"//spyker:detached waiver needs a non-empty reason"))
				}
				return true
			}
			gl.checkGoStmt(gs, waitedOn)
			return true
		})
	}
	return gl.diags
}

type lifeChecker struct {
	pkg   *Package
	funcs map[*types.Func]*ast.FuncDecl // same-package function bodies
	diags []Diagnostic
}

func (gl *lifeChecker) collectFuncs() {
	for _, file := range gl.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := gl.pkg.Info.Defs[fd.Name].(*types.Func); ok {
				gl.funcs[f] = fd
			}
		}
	}
}

// collectWaits records the base names of every WaitGroup the package
// visibly calls Wait on ("wg", "s.wg" -> "wg"), so a Done-tied
// goroutine can be checked for a matching join point.
func (gl *lifeChecker) collectWaits() map[string]bool {
	waited := map[string]bool{}
	for _, file := range gl.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, isWG := gl.waitGroupMethod(call, "Wait"); isWG {
				waited[name] = true
			}
			return true
		})
	}
	return waited
}

// waitGroupMethod resolves a call to a sync.WaitGroup method and
// returns the group's base name (final path segment of the receiver).
func (gl *lifeChecker) waitGroupMethod(call *ast.CallExpr, method string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	if !isWaitGroupType(gl.pkg.Info.TypeOf(sel.X)) {
		return "", false
	}
	key := exprKey(sel.X)
	if key == "" {
		return "", false
	}
	return lockBase(key), true
}

func (gl *lifeChecker) checkGoStmt(gs *ast.GoStmt, waitedOn map[string]bool) {
	body := gl.goBody(gs)
	if body == nil {
		gl.diags = append(gl.diags, gl.pkg.diag("goroutinelife", "untied", gs.Pos(),
			"goroutine runs a function defined outside this package; tie it to a done channel or WaitGroup, or waive with //spyker:detached(reason)"))
		return
	}
	if wg, ok := gl.doneWaitGroup(body); ok {
		if !waitedOn[wg] {
			gl.diags = append(gl.diags, gl.pkg.diag("goroutinelife", "no-wait", gs.Pos(),
				"goroutine signals WaitGroup %s but no Wait on %s is visible in this package", wg, wg))
		}
		return
	}
	if receivesCapturedChannel(gl.pkg, body) {
		return
	}
	if name, serves := callsUnboundedServe(body); serves {
		gl.diags = append(gl.diags, gl.pkg.diag("goroutinelife", "untied", gs.Pos(),
			"goroutine blocks in %s with no shutdown tie; it outlives every rewiring — tie it or waive with //spyker:detached(reason)", name))
		return
	}
	if !containsLoop(body) {
		return // bounded body: terminates by construction
	}
	gl.diags = append(gl.diags, gl.pkg.diag("goroutinelife", "untied", gs.Pos(),
		"goroutine loops with no shutdown tie (no captured done channel, no WaitGroup); it can leak across rewiring — tie it or waive with //spyker:detached(reason)"))
}

// callsUnboundedServe reports whether the body calls an accept/serve
// entry point (ListenAndServe, Serve) that blocks for the life of the
// process: such a body terminates only by construction of the process,
// not of the goroutine.
func callsUnboundedServe(body *ast.BlockStmt) (string, bool) {
	var name string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee = fun.Name
		case *ast.SelectorExpr:
			callee = fun.Sel.Name
		}
		if callee == "Serve" || strings.HasPrefix(callee, "ListenAndServe") {
			name = callee
			return false
		}
		return true
	})
	return name, name != ""
}

// goBody resolves the body a go statement runs: the function literal
// itself, or the declaration of a same-package named function/method.
func (gl *lifeChecker) goBody(gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	f := gl.pkg.calleeFunc(gs.Call)
	if f == nil {
		return nil
	}
	if fd, ok := gl.funcs[f]; ok {
		return fd.Body
	}
	return nil
}

// doneWaitGroup reports whether the goroutine body calls Done (usually
// deferred) on a sync.WaitGroup, returning the group's base name.
func (gl *lifeChecker) doneWaitGroup(body *ast.BlockStmt) (string, bool) {
	var name string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if wg, isWG := gl.waitGroupMethod(call, "Done"); isWG {
			name = wg
			return false
		}
		return true
	})
	return name, name != ""
}

// receivesCapturedChannel reports whether the body receives from or
// ranges over a channel it did not itself create: a receive on a
// captured channel is a shutdown signal path (close(done) unblocks or
// terminates it).
func receivesCapturedChannel(pkg *Package, body *ast.BlockStmt) bool {
	// Channels the body makes locally cannot be a tie from the outside.
	local := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if lid, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pkg.Info.Defs[lid]; obj != nil {
					local[obj] = true
				}
			}
		}
		return true
	})
	isCaptured := func(ch ast.Expr) bool {
		t := pkg.Info.TypeOf(ch)
		if t == nil {
			return false
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return false
		}
		if id := leftIdent(ch); id != nil && local[pkg.Info.Uses[id]] {
			return false
		}
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCaptured(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isCaptured(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsLoop reports whether the body has any for/range statement.
func containsLoop(body *ast.BlockStmt) bool {
	loop := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loop = true
		}
		return !loop
	})
	return loop
}

// isWaitGroupType reports whether t is sync.WaitGroup, possibly behind
// a pointer.
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// detachedWaivers maps source lines to the reason of a
// //spyker:detached(reason) comment on them.
func detachedWaivers(pkg *Package, file *ast.File) map[int]string {
	waivers := map[int]string{}
	for _, group := range file.Comments {
		for _, c := range group.List {
			if m := detachedRe.FindStringSubmatch(c.Text); m != nil {
				waivers[pkg.Fset.Position(c.Pos()).Line] = m[1]
			}
		}
	}
	return waivers
}
