package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// paridiom enforces the sanctioned parallel-kernel form for the
// deterministic layers (ROADMAP item 3: multicore kernels with
// bit-reproducible float accumulation). In DeterministicPkgs, a
// function that launches worker goroutines must:
//
//   - derive its chunk boundaries from compile-time-visible values —
//     runtime.NumCPU / runtime.GOMAXPROCS vary by machine and make the
//     chunking, and therefore float summation order, irreproducible;
//   - combine results in a fixed order: workers write disjoint entries
//     of an indexed result slice (results[i] = partial) and the caller
//     reduces that slice sequentially after the join. Accumulating
//     across a channel (for v := range ch { sum += v }) or into a
//     shared captured variable from inside a worker orders the
//     reduction by goroutine-scheduling, which is nondeterministic.
//
// A reduction that is genuinely order-insensitive (integer sums,
// max/min) is waived with //spyker:ordered(reason) on the flagged line
// or the line above.
var orderedRe = regexp.MustCompile(`^//spyker:ordered\(([^)]*)\)`)

func runParIdiom(cfg *Config, pkg *Package) []Diagnostic {
	if !hasPkgSuffix(pkg.ImportPath, cfg.DeterministicPkgs) {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		waivers := map[int]string{}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if m := orderedRe.FindStringSubmatch(c.Text); m != nil {
					waivers[pkg.Fset.Position(c.Pos()).Line] = m[1]
				}
			}
		}
		waived := func(pos token.Pos) (bool, bool) {
			line := pkg.Fset.Position(pos).Line
			for _, l := range []int{line, line - 1} {
				if reason, ok := waivers[l]; ok {
					return true, strings.TrimSpace(reason) != ""
				}
			}
			return false, false
		}
		report := func(rule string, pos token.Pos, format string, args ...any) {
			if ok, nonEmpty := waived(pos); ok {
				if !nonEmpty {
					diags = append(diags, pkg.diag("paridiom", "bad-waiver", pos,
						"//spyker:ordered waiver needs a non-empty reason"))
				}
				return
			}
			diags = append(diags, pkg.diag("paridiom", rule, pos, format, args...))
		}

		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkParallelKernel(pkg, fd, report)
		}
	}
	return diags
}

// checkParallelKernel screens one function. Functions that never
// launch a goroutine are sequential and exempt.
func checkParallelKernel(pkg *Package, fd *ast.FuncDecl, report func(rule string, pos token.Pos, format string, args ...any)) {
	spawns := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			spawns = true
		}
		return !spawns
	})
	if !spawns {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := pkg.calleeFunc(n); f != nil && pkgPathOf(f) == "runtime" &&
				(f.Name() == "NumCPU" || f.Name() == "GOMAXPROCS") {
				report("runtime-chunks", n.Pos(),
					"chunk boundaries derived from runtime.%s vary by machine and break bit-reproducible reduction; take the worker count as an explicit parameter", f.Name())
			}

		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkWorkerBody(pkg, lit, report)
			}
			return true

		case *ast.RangeStmt:
			t := pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			if accumulates(n.Body) {
				report("channel-reduce", n.Pos(),
					"reduction over a channel orders float accumulation by goroutine scheduling; collect into an indexed result slice and reduce sequentially after the join")
			}

		case *ast.AssignStmt:
			if isCompound(n.Tok) && containsRecv(n.Rhs) {
				report("channel-reduce", n.Pos(),
					"accumulating a channel receive orders the reduction by message arrival; collect into an indexed result slice and reduce sequentially after the join")
			}
		}
		return true
	})
}

// checkWorkerBody flags shared-accumulator writes inside a worker
// goroutine: compound assignment or ++/-- on a captured, non-indexed
// variable. Writing results[i] stays legal — disjoint indexed slots
// are the sanctioned combine.
func checkWorkerBody(pkg *Package, lit *ast.FuncLit, report func(rule string, pos token.Pos, format string, args ...any)) {
	// Variables declared inside the literal are the worker's own.
	owned := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				owned[obj] = true
			}
		}
		return true
	})
	for _, f := range lit.Type.Params.List {
		for _, id := range f.Names {
			if obj := pkg.Info.Defs[id]; obj != nil {
				owned[obj] = true
			}
		}
	}
	captured := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return false // indexed slot: the sanctioned form
		case *ast.Ident:
			return !owned[pkg.Info.Uses[e]]
		case *ast.SelectorExpr:
			id := leftIdent(e)
			return id != nil && !owned[pkg.Info.Uses[id]]
		}
		return false
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit
		case *ast.AssignStmt:
			if !isCompound(n.Tok) {
				return true
			}
			for _, lhs := range n.Lhs {
				if captured(lhs) {
					report("shared-accumulator", n.Pos(),
						"worker accumulates into captured %s; workers must write disjoint indexed results and let the caller reduce sequentially", exprKey(lhs))
				}
			}
		case *ast.IncDecStmt:
			if captured(n.X) {
				report("shared-accumulator", n.Pos(),
					"worker accumulates into captured %s; workers must write disjoint indexed results and let the caller reduce sequentially", exprKey(n.X))
			}
		}
		return true
	})
}

// accumulates reports whether a loop body compound-assigns to a
// non-indexed target — the signature of an order-sensitive reduction.
func accumulates(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if isCompound(n.Tok) {
				for _, lhs := range n.Lhs {
					if _, indexed := ast.Unparen(lhs).(*ast.IndexExpr); !indexed {
						found = true
					}
				}
			}
		case *ast.IncDecStmt:
			if _, indexed := ast.Unparen(n.X).(*ast.IndexExpr); !indexed {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCompound reports whether an assignment token is an accumulating
// op-assign (+=, -=, *=, ...).
func isCompound(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}

// containsRecv reports whether any expression contains a channel
// receive.
func containsRecv(exprs []ast.Expr) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
			}
			return !found
		})
	}
	return found
}
