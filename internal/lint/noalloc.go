package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocDirective marks a function whose own statements must not
// allocate (see the package documentation for the full contract).
const noallocDirective = "//spyker:noalloc"

// noallocFn is one annotated function with its body's source extent, the
// unit both the AST pass and the escape gate report against.
type noallocFn struct {
	name       string
	file       string
	start, end int // body line range, inclusive
	decl       *ast.FuncDecl
}

// runNoalloc applies the AST allocation checks to every annotated
// function and, when enabled, the compiler escape gate to every package
// containing one.
func runNoalloc(cfg *Config, pkg *Package) []Diagnostic {
	fns := noallocFuncs(pkg)
	if len(fns) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, fn := range fns {
		diags = append(diags, checkNoallocBody(pkg, fn)...)
	}
	if cfg.EscapeGate {
		diags = append(diags, escapeGate(pkg, fns)...)
	}
	return diags
}

// noallocFuncs collects the //spyker:noalloc functions of a package.
func noallocFuncs(pkg *Package) []noallocFn {
	var fns []noallocFn
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
					annotated = true
					break
				}
			}
			if !annotated {
				continue
			}
			start := pkg.Fset.Position(fd.Body.Pos())
			end := pkg.Fset.Position(fd.Body.End())
			fns = append(fns, noallocFn{
				name:  fd.Name.Name,
				file:  start.Filename,
				start: start.Line,
				end:   end.Line,
				decl:  fd,
			})
		}
	}
	return fns
}

// checkNoallocBody walks one annotated function body and rejects the
// allocation constructs visible in the syntax tree. Calls to other
// functions are allowed — their allocations are attributed to the callee
// — except calls into fmt, which exist to build strings.
func checkNoallocBody(pkg *Package, fn noallocFn) []Diagnostic {
	var diags []Diagnostic
	report := func(rule string, pos token.Pos, format string, args ...any) {
		diags = append(diags, pkg.diag("noalloc", rule, pos, format, args...))
	}
	sig, _ := pkg.Info.Defs[fn.decl.Name].Type().(*types.Signature)

	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report("closure", n.Pos(), "closure literal allocates in //spyker:noalloc function %s", fn.name)
			return false // the closure's own body is not the annotated function

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report("composite-alloc", n.Pos(), "address of composite literal allocates in //spyker:noalloc function %s", fn.name)
				}
			}

		case *ast.CompositeLit:
			switch pkg.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report("composite-alloc", n.Pos(), "slice literal allocates in //spyker:noalloc function %s", fn.name)
			case *types.Map:
				report("composite-alloc", n.Pos(), "map literal allocates in //spyker:noalloc function %s", fn.name)
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pkg.Info.TypeOf(n)) {
				report("string-alloc", n.Pos(), "string concatenation allocates in //spyker:noalloc function %s", fn.name)
			}

		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pkg.Info.TypeOf(n.Lhs[0])) {
				report("string-alloc", n.Pos(), "string concatenation allocates in //spyker:noalloc function %s", fn.name)
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if boxes(pkg, pkg.Info.TypeOf(n.Lhs[i]), rhs) {
						report("interface-box", rhs.Pos(), "assignment boxes %s into an interface in //spyker:noalloc function %s",
							typeName(pkg, rhs), fn.name)
					}
				}
			}

		case *ast.ValueSpec:
			if n.Type != nil {
				dst := pkg.Info.TypeOf(n.Type)
				for _, v := range n.Values {
					if boxes(pkg, dst, v) {
						report("interface-box", v.Pos(), "declaration boxes %s into an interface in //spyker:noalloc function %s",
							typeName(pkg, v), fn.name)
					}
				}
			}

		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					if boxes(pkg, sig.Results().At(i).Type(), res) {
						report("interface-box", res.Pos(), "return boxes %s into an interface in //spyker:noalloc function %s",
							typeName(pkg, res), fn.name)
					}
				}
			}

		case *ast.CallExpr:
			diags = append(diags, checkNoallocCall(pkg, fn, n)...)
		}
		return true
	})
	return diags
}

// checkNoallocCall handles the call-shaped allocation sources: builtins,
// conversions, fmt, and interface boxing at argument positions.
func checkNoallocCall(pkg *Package, fn noallocFn, call *ast.CallExpr) []Diagnostic {
	var diags []Diagnostic
	report := func(rule string, pos token.Pos, format string, args ...any) {
		diags = append(diags, pkg.diag("noalloc", rule, pos, format, args...))
	}

	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x).
		dst := tv.Type
		if len(call.Args) == 1 {
			if boxes(pkg, dst, call.Args[0]) {
				report("interface-box", call.Pos(), "conversion boxes %s into an interface in //spyker:noalloc function %s",
					typeName(pkg, call.Args[0]), fn.name)
			}
			src := pkg.Info.TypeOf(call.Args[0])
			if stringBytesConversion(dst, src) {
				report("string-alloc", call.Pos(), "string conversion allocates in //spyker:noalloc function %s", fn.name)
			}
		}
		return diags
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				report("builtin-alloc", call.Pos(), "call to %s allocates in //spyker:noalloc function %s", b.Name(), fn.name)
			}
			return diags
		}
	}

	if f := pkg.calleeFunc(call); f != nil && pkgPathOf(f) == "fmt" {
		report("fmt-call", call.Pos(), "call to fmt.%s allocates in //spyker:noalloc function %s", f.Name(), fn.name)
		return diags
	}

	sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return diags
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			dst = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			dst = params.At(i).Type()
		}
		if boxes(pkg, dst, arg) {
			report("interface-box", arg.Pos(), "argument boxes %s into an interface in //spyker:noalloc function %s",
				typeName(pkg, arg), fn.name)
		}
	}
	return diags
}

// boxes reports whether assigning src to an interface-typed destination
// heap-allocates: the destination is an interface, the source a concrete
// value that is neither constant (static data), pointer-shaped (stored
// directly in the interface word), nor empty (the runtime's zero base).
func boxes(pkg *Package, dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := pkg.Info.Types[src]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface copies the word pair
	case *types.Basic:
		if u.Kind() == types.UntypedNil {
			return false
		}
	case *types.Struct:
		if u.NumFields() == 0 {
			return false // zero-size values share the runtime's zero base
		}
	}
	return !pointerShaped(tv.Type)
}

// pointerShaped reports whether values of t are represented as a single
// pointer word, which an interface stores without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		_ = u
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringBytesConversion reports whether a conversion between string and
// []byte/[]rune copies its operand.
func stringBytesConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// typeName renders the static type of an expression for messages.
func typeName(pkg *Package, e ast.Expr) string {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return "value"
	}
	return types.TypeString(t, types.RelativeTo(pkg.Types))
}
