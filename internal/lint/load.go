package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package: the unit the
// analyzers operate on.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, non-test files only
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// exports maps every import path in the build's dependency closure to
	// its export-data file — the raw material for the escape gate's
	// importcfg.
	exports map[string]string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, "" for the
// current directory), parses their non-test Go files, and type-checks
// them against the export data of their dependencies. It is the
// stdlib-only equivalent of an x/tools packages.Load: `go list -export
// -deps -json` supplies the file sets and builds the export data, and the
// gc importer consumes that data through a lookup function.
//
// Only the packages named by the patterns are returned; dependencies are
// imported from export data, never re-analyzed. Test files are not
// loaded: the invariants the analyzers enforce are shipping-code
// properties.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package.
func typecheck(fset *token.FileSet, imp types.Importer, t listPackage, exports map[string]string) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	paths := make([]string, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: resolver{imp: imp, importMap: t.ImportMap}}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		GoFiles:    paths,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		exports:    exports,
	}, nil
}

// resolver applies go list's ImportMap (vendoring or module rewrites, if
// any) before delegating to the export-data importer.
type resolver struct {
	imp       types.Importer
	importMap map[string]string
}

func (r resolver) Import(path string) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	return r.imp.Import(path)
}
