package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: an invariant violation at a source position.
// Rule is the stable machine-readable identifier of the specific check
// that fired, namespaced by analyzer (e.g. "lockdiscipline/unguarded-read");
// Message wording may evolve, Rule values do not.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Rule     string `json:"rule"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the standard file:line:col compiler
// format, so editors and CI annotate it like a build error.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one static check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(cfg *Config, pkg *Package) []Diagnostic
}

// Config parameterizes a lint run. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// DeterministicPkgs are import-path suffixes of the packages the
	// determinism analyzer applies to.
	DeterministicPkgs []string
	// SinkCallbackPkgs are import-path suffixes an obs.Sink implementation
	// must never call back into.
	SinkCallbackPkgs []string
	// SendPkgs are import-path suffixes whose error-returning send/encode
	// calls must be consumed.
	SendPkgs []string
	// RuntimePkgs are import-path suffixes of the concurrent runtime
	// packages whose goroutines must be tied to a shutdown mechanism.
	RuntimePkgs []string
	// EscapeGate enables the noalloc analyzer's `go tool compile -m` pass
	// on packages containing //spyker:noalloc annotations.
	EscapeGate bool
	// RelDir, when non-empty, makes diagnostic file paths relative to it.
	RelDir string
}

// DefaultConfig is the repository policy: the deterministic layers of the
// emulation stack, the runtime packages sinks must not re-enter, the wire
// packages whose send errors are load-bearing, and the escape gate on.
// The lint fixture packages under internal/lint/testdata are included so
// the shipped binary flags them exactly like the layers they imitate —
// which is also what keeps the golden tests honest about CLI behaviour.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"internal/tensor", "internal/nn", "internal/paramvec",
			"internal/data", "internal/fl", "internal/simulation",
			"internal/geo", "internal/spyker", "internal/baselines",
			"internal/compress", "internal/metrics", "internal/cluster",
			"internal/fault", "internal/ring", "internal/obs/health",
			"internal/obs/audit",
			"internal/lint/testdata/src/determinism",
			"internal/lint/testdata/src/paridiom",
		},
		SinkCallbackPkgs: []string{
			"internal/spyker", "internal/simulation", "internal/live",
		},
		SendPkgs: []string{
			"internal/transport", "internal/live",
			"cmd/spyker-mon", "cmd/spyker-live",
		},
		RuntimePkgs: []string{
			"internal/live", "internal/transport", "internal/spyker",
			"internal/paramvec", "internal/obs", "internal/obs/audit",
			"internal/obs/health", "internal/fault", "internal/geo",
			"internal/ring", "cmd/spyker-mon", "cmd/spyker-live",
			"internal/lint/testdata/src/goroutinelife",
		},
		EscapeGate: true,
	}
}

// Analyzers returns the registered analyzers in their canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{
			Name: "determinism",
			Doc:  "forbid time.Now, global math/rand, and unwaived map ranges in deterministic layers",
			Run:  runDeterminism,
		},
		{
			Name: "noalloc",
			Doc:  "forbid allocation constructs and compiler-proven escapes in //spyker:noalloc functions",
			Run:  runNoalloc,
		},
		{
			Name: "sinkpassivity",
			Doc:  "obs.Sink implementations must not write foreign state or re-enter the runtimes",
			Run:  runSinkPassivity,
		},
		{
			Name: "sendcheck",
			Doc:  "transport/live/monitoring send and encode errors must be consumed or explicitly discarded",
			Run:  runSendCheck,
		},
		{
			Name: "lockdiscipline",
			Doc:  "//spyker:guardedby fields accessed only under their mutex; no double-lock, leaked lock, or order inversion",
			Run:  runLockDiscipline,
		},
		{
			Name: "goroutinelife",
			Doc:  "goroutines in the runtime packages must be tied to a shutdown mechanism or carry //spyker:detached",
			Run:  runGoroutineLife,
		},
		{
			Name: "paridiom",
			Doc:  "parallel kernels in deterministic layers must use fixed chunks and an ordered (indexed-slice) combine",
			Run:  runParIdiom,
		},
	}
}

// Run loads the packages matching patterns and applies the selected
// analyzers (nil or empty = all). Findings come back sorted by position.
func Run(cfg *Config, dir string, only []string, patterns ...string) ([]Diagnostic, error) {
	selected, err := selectAnalyzers(only)
	if err != nil {
		return nil, err
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range selected {
			diags = append(diags, a.Run(cfg, pkg)...)
		}
	}
	if cfg.RelDir != "" {
		for i := range diags {
			if rel, err := filepath.Rel(cfg.RelDir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = rel
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// selectAnalyzers resolves -only names against the registry.
func selectAnalyzers(only []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(only) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var selected []*Analyzer
	for _, name := range only {
		a, ok := byName[name]
		if !ok {
			names := make([]string, 0, len(all))
			for _, a := range all {
				names = append(names, a.Name)
			}
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
		}
		selected = append(selected, a)
	}
	return selected, nil
}

// hasPkgSuffix reports whether importPath ends in one of the configured
// path suffixes, matching at a path-segment boundary.
func hasPkgSuffix(importPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// diag builds a Diagnostic at pos. rule is the analyzer-local stable
// identifier of the check; the reported Rule is "analyzer/rule".
func (p *Package) diag(analyzer, rule string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		Rule:     analyzer + "/" + rule,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (nil for builtins, conversions, and calls through function values).
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	f, _ := obj.(*types.Func)
	return f
}

// pkgPathOf returns the defining package path of a function, "" for
// universe-scope objects.
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}
