package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// lockdiscipline enforces the repository's mutex protocol through two
// annotations:
//
//	//spyker:guardedby(mu)  on a struct field: every read or write of
//	                        the field must happen with the sibling
//	                        mutex field mu held (Lock or RLock) on all
//	                        CFG paths to the access.
//	//spyker:locked(mu)     on a function or method: the caller holds
//	                        mu on entry. The body is analyzed with mu
//	                        held, and same-package callers are checked
//	                        to actually hold it at the call site.
//
// On top of the annotation checks, every function is screened for
// double acquisition of a held mutex, for locks that may still be held
// on some path to a return (unlock must post-dominate the lock or be
// deferred), and — per file — for lock-order inversion between a pair
// of mutexes.
var (
	guardedByRe = regexp.MustCompile(`^//spyker:guardedby\(([A-Za-z_][A-Za-z0-9_.]*)\)`)
	lockedRe    = regexp.MustCompile(`^//spyker:locked\(([A-Za-z_][A-Za-z0-9_.]*)\)`)
)

// guardInfo records one annotated field: the lock that guards it and
// the struct it lives in, for messages.
type guardInfo struct {
	lock       string
	structName string
	field      string
}

// sharedInfo records one UNannotated field of a struct that has opted
// into guard annotations: writing it while one of the struct's guard
// locks is held is either a missing annotation or a field that does not
// belong under the lock — both worth a finding. This is what keeps the
// annotation set complete: deleting a //spyker:guardedby from a field
// that is still written under the lock resurfaces immediately.
type sharedInfo struct {
	structName string
	field      string
	locks      []string // locks guarding at least one sibling field
}

func runLockDiscipline(cfg *Config, pkg *Package) []Diagnostic {
	ld := &lockChecker{pkg: pkg, guards: map[*types.Var]guardInfo{}, shared: map[*types.Var]sharedInfo{}, locked: map[*types.Func]string{}}
	ld.collectGuards()
	ld.collectLocked()
	for _, file := range pkg.Files {
		orders := map[[2]string]token.Pos{}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ld.checkFunc(fd, orders)
			// Closures are separate execution contexts: analyze each with
			// an empty entry lockset.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					ld.checkBody(lit.Body, flowSet{}, "func literal", lit.Pos(), orders)
				}
				return true
			})
		}
		ld.reportInversions(orders)
	}
	return ld.diags
}

type lockChecker struct {
	pkg        *Package
	guards     map[*types.Var]guardInfo  // annotated field -> its guard
	shared     map[*types.Var]sharedInfo // unannotated siblings in annotated structs
	locked     map[*types.Func]string    // //spyker:locked functions -> lock name
	localRoots map[types.Object]bool     // vars the current function constructed
	aliases    map[string]string         // alias root -> canonical root (s := (*Server)(o))
	diags      []Diagnostic
}

// canon rewrites a lockset key's root through the current function's
// alias map, so `s := (*Server)(o)` makes "s.mu" and "o.mu" the same
// lock. Alias chains resolve transitively with a small bound.
func (ld *lockChecker) canon(key string) string {
	if key == "" {
		return ""
	}
	root, rest := key, ""
	if i := strings.IndexByte(key, '.'); i >= 0 {
		root, rest = key[:i], key[i:]
	}
	for i := 0; i < 8; i++ {
		next, ok := ld.aliases[root]
		if !ok {
			break
		}
		root = next
	}
	return root + rest
}

// collectAliases records `s := expr` defines whose right-hand side is a
// pure view of another tracked variable: a plain identifier, a pointer
// type conversion like (*Server)(o), or &x / *x. Accesses through the
// alias then count against the canonical variable's locks.
func collectAliases(pkg *Package, body *ast.BlockStmt) map[string]string {
	aliases := map[string]string{}
	viewRoot := func(e ast.Expr) *ast.Ident {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				return x
			case *ast.StarExpr:
				e = x.X
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return nil
				}
				e = x.X
			case *ast.CallExpr:
				// A type conversion is a view, a real call is not.
				if tv, ok := pkg.Info.Types[x.Fun]; !ok || !tv.IsType() || len(x.Args) != 1 {
					return nil
				}
				e = x.Args[0]
			default:
				return nil
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if root := viewRoot(as.Rhs[i]); root != nil && root.Name != id.Name {
				aliases[id.Name] = root.Name
			}
		}
		return true
	})
	return aliases
}

// collectGuards walks every named struct type, records the
// //spyker:guardedby fields, and validates that the named lock is a
// sibling sync.Mutex/RWMutex field.
func (ld *lockChecker) collectGuards() {
	for _, file := range ld.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexFields := map[string]bool{}
			for _, f := range st.Fields.List {
				if isMutexType(ld.pkg.Info.TypeOf(f.Type)) {
					for _, name := range f.Names {
						mutexFields[name.Name] = true
					}
				}
			}
			annotated := map[string]bool{} // field name -> has a guardedby annotation
			var guardLocks []string        // locks guarding at least one field, in order
			for _, f := range st.Fields.List {
				lock, pos, ok := fieldGuardAnnotation(f)
				if !ok {
					continue
				}
				if !mutexFields[lock] {
					ld.diags = append(ld.diags, ld.pkg.diag("lockdiscipline", "bad-annotation", pos,
						"//spyker:guardedby(%s): struct %s has no sync.Mutex/RWMutex field named %s",
						lock, ts.Name.Name, lock))
					continue
				}
				seen := false
				for _, l := range guardLocks {
					seen = seen || l == lock
				}
				if !seen {
					guardLocks = append(guardLocks, lock)
				}
				for _, name := range f.Names {
					annotated[name.Name] = true
					if v, ok := ld.pkg.Info.Defs[name].(*types.Var); ok {
						ld.guards[v] = guardInfo{lock: lock, structName: ts.Name.Name, field: name.Name}
					}
				}
			}
			// A struct with any annotation has opted into the discipline:
			// record its unannotated, non-mutex fields so writes to them
			// under a guard lock surface as missing annotations.
			if len(guardLocks) > 0 {
				for _, f := range st.Fields.List {
					if isMutexType(ld.pkg.Info.TypeOf(f.Type)) {
						continue
					}
					for _, name := range f.Names {
						if annotated[name.Name] {
							continue
						}
						if v, ok := ld.pkg.Info.Defs[name].(*types.Var); ok {
							ld.shared[v] = sharedInfo{structName: ts.Name.Name, field: name.Name, locks: guardLocks}
						}
					}
				}
			}
			return true
		})
	}
}

// fieldGuardAnnotation extracts a //spyker:guardedby directive from a
// field's doc or trailing comment.
func fieldGuardAnnotation(f *ast.Field) (lock string, pos token.Pos, ok bool) {
	for _, group := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// collectLocked records the //spyker:locked(mu) functions of the
// package: their bodies run with mu held by the caller.
func (ld *lockChecker) collectLocked() {
	for _, file := range ld.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := lockedRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if f, ok := ld.pkg.Info.Defs[fd.Name].(*types.Func); ok {
					ld.locked[f] = m[1]
				}
			}
		}
	}
}

// entryLockset computes the locks a function holds on entry from its
// //spyker:locked annotation: receiver.lock for methods, the bare lock
// name for plain functions.
func (ld *lockChecker) entryLockset(fd *ast.FuncDecl) flowSet {
	entry := flowSet{}
	f, _ := ld.pkg.Info.Defs[fd.Name].(*types.Func)
	lock, ok := ld.locked[f]
	if !ok {
		return entry
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv := fd.Recv.List[0].Names[0].Name
		if recv != "_" {
			entry[recv+"."+lock] = true
			return entry
		}
	}
	entry[lock] = true
	return entry
}

func (ld *lockChecker) checkFunc(fd *ast.FuncDecl, orders map[[2]string]token.Pos) {
	ld.checkBody(fd.Body, ld.entryLockset(fd), fd.Name.Name, fd.Name.Pos(), orders)
}

// checkBody runs the lockset dataflow over one function body and
// reports violations. The must-analysis (intersection at joins) backs
// the guarded-access and double-lock checks; the may-analysis (union)
// backs the held-at-return check.
func (ld *lockChecker) checkBody(body *ast.BlockStmt, entry flowSet, name string, namePos token.Pos, orders map[[2]string]token.Pos) {
	ld.localRoots = localConstructions(ld.pkg, body)
	ld.aliases = collectAliases(ld.pkg, body)
	g := buildCFG(body)
	transfer := func(n ast.Node, in flowSet) flowSet {
		return ld.transfer(n, in)
	}
	inMust := g.forward(entry, false, transfer)
	inMay := g.forward(entry, true, transfer)

	for _, blk := range g.blocks {
		must := inMust[blk]
		if must == nil {
			continue // unreachable
		}
		for _, n := range blk.nodes {
			ld.checkNode(n, must, orders)
			must = transfer(n, must)
		}
	}

	// Unlock must post-dominate or be deferred: any lock that may
	// survive to a return — beyond the caller-held entry set and the
	// deferred unlocks — leaks on that path.
	deferred := flowSet{}
	for _, call := range g.deferred {
		if key, op := mutexOp(ld.pkg, call); op == opUnlock {
			deferred[ld.canon(key)] = true
		}
	}
	exitMay := inMay[g.exit]
	leaked := make([]string, 0, len(exitMay))
	for key := range exitMay {
		if !entry[key] && !deferred[key] {
			leaked = append(leaked, key)
		}
	}
	if len(leaked) > 0 {
		ld.diags = append(ld.diags, ld.pkg.diag("lockdiscipline", "missing-unlock", namePos,
			"%s may still be held at return from %s; unlock on every path or defer the unlock",
			strings.Join(sortedKeys(leaked), ", "), name))
	}
}

// transfer folds one CFG node into the lockset: Lock/RLock adds the
// mutex, Unlock/RUnlock removes it. Deferred calls and nested function
// literals are skipped — defers run at exit, closures are analyzed as
// their own functions.
func (ld *lockChecker) transfer(n ast.Node, in flowSet) flowSet {
	out := in
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op := mutexOp(ld.pkg, call)
		key = ld.canon(key)
		if key == "" {
			return true
		}
		switch op {
		case opLock:
			if !out[key] {
				out = out.clone()
				out[key] = true
			}
		case opUnlock:
			if out[key] {
				out = out.clone()
				delete(out, key)
			}
		}
		return true
	})
	return out
}

// checkNode reports the violations visible at one node given the
// must-held lockset before it.
func (ld *lockChecker) checkNode(n ast.Node, must flowSet, orders map[[2]string]token.Pos) {
	held := must.clone()
	writes := writeTargets(n)
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			ld.checkCall(m, held, orders)
			// Fold the op so later accesses in the same statement see it.
			if key, op := mutexOp(ld.pkg, m); ld.canon(key) != "" {
				key = ld.canon(key)
				switch op {
				case opLock:
					held[key] = true
				case opUnlock:
					delete(held, key)
				}
			}
		case *ast.SelectorExpr:
			ld.checkAccess(m, held, writes[m], n)
		}
		return true
	})
}

// checkCall handles the two call-shaped checks: double acquisition and
// lock-order recording on Lock, and the caller-holds contract on calls
// to //spyker:locked functions.
func (ld *lockChecker) checkCall(call *ast.CallExpr, held flowSet, orders map[[2]string]token.Pos) {
	if key, op := mutexOp(ld.pkg, call); ld.canon(key) != "" && op == opLock {
		key = ld.canon(key)
		if held[key] {
			ld.diags = append(ld.diags, ld.pkg.diag("lockdiscipline", "double-lock", call.Pos(),
				"acquiring %s while it is already held deadlocks", key))
		}
		for prior := range held {
			a, b := lockBase(prior), lockBase(key)
			if a != b {
				if _, seen := orders[[2]string{a, b}]; !seen {
					orders[[2]string{a, b}] = call.Pos()
				}
			}
		}
		return
	}
	f := ld.pkg.calleeFunc(call)
	lock, ok := ld.locked[f]
	if !ok {
		return
	}
	required := lock
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && f.Type().(*types.Signature).Recv() != nil {
		base := ld.canon(exprKey(sel.X))
		if base == "" {
			return // receiver not a trackable path
		}
		required = base + "." + lock
	}
	if !held[required] {
		ld.diags = append(ld.diags, ld.pkg.diag("lockdiscipline", "caller-lock", call.Pos(),
			"call to %s requires %s held (//spyker:locked(%s))", f.Name(), required, lock))
	}
}

// checkAccess reports guarded-field reads/writes made without the
// guard held on every path.
func (ld *lockChecker) checkAccess(sel *ast.SelectorExpr, held flowSet, isWrite bool, context ast.Node) {
	s, ok := ld.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	gi, guarded := ld.guards[v]
	base := ld.canon(exprKey(sel.X))
	if base == "" {
		return // access through a computed expression: not trackable
	}
	if root := leftIdent(sel.X); root != nil && ld.localRoots[ld.pkg.Info.Uses[root]] {
		return // the function built this value; no other goroutine sees it yet
	}
	if !guarded {
		si, sib := ld.shared[v]
		if !sib || !isWrite {
			return
		}
		for _, lock := range si.locks {
			if held[base+"."+lock] {
				ld.diags = append(ld.diags, ld.pkg.diag("lockdiscipline", "unannotated-write", sel.Pos(),
					"write to %s.%s while %s.%s is held, but the field has no //spyker:guardedby annotation; annotate it or move the write outside the lock",
					si.structName, si.field, base, lock))
				return
			}
		}
		return
	}
	required := base + "." + gi.lock
	if held[required] {
		return
	}
	rule, verb := "unguarded-read", "read of"
	if isWrite {
		rule, verb = "unguarded-write", "write to"
	}
	ld.diags = append(ld.diags, ld.pkg.diag("lockdiscipline", rule, sel.Pos(),
		"%s %s.%s (//spyker:guardedby(%s)) without holding %s on all paths",
		verb, gi.structName, gi.field, gi.lock, required))
}

// reportInversions emits one finding per inverted lock pair in a file.
func (ld *lockChecker) reportInversions(orders map[[2]string]token.Pos) {
	for pair, pos := range orders {
		rev := [2]string{pair[1], pair[0]}
		revPos, both := orders[rev]
		if !both || pair[0] > pair[1] {
			continue // report once, from the lexicographically smaller pair
		}
		other := ld.pkg.Fset.Position(revPos)
		ld.diags = append(ld.diags, ld.pkg.diag("lockdiscipline", "lock-order", pos,
			"lock order inversion: %s acquired while holding %s here, but the opposite order at %s:%d",
			pair[1], pair[0], shortPath(other.Filename), other.Line))
	}
}

// ---- helpers ----

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// mutexOp resolves a call to a sync.Mutex/RWMutex acquire or release
// and returns the lock's path key ("mu", "s.mu"). TryLock is ignored:
// its acquisition is conditional and the analysis has no branch
// correlation.
func mutexOp(pkg *Package, call *ast.CallExpr) (string, mutexOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var kind mutexOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", opNone
	}
	if !isMutexType(pkg.Info.TypeOf(sel.X)) {
		return "", opNone
	}
	key := exprKey(sel.X)
	if key == "" {
		return "", opNone
	}
	return key, kind
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex,
// possibly behind a pointer.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprKey renders a simple access path ("s.mu", "pool.classes") for
// lockset keys; "" when the expression is not a plain ident/selector
// chain. A parenthesized pointer conversion like (*Server)(o) is a pure
// view of its operand and keys as the operand.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		if _, paren := e.Fun.(*ast.ParenExpr); paren && len(e.Args) == 1 {
			return exprKey(e.Args[0])
		}
	}
	return ""
}

// leftIdent walks an ident/selector/star chain down to its leftmost
// identifier, nil when the chain starts elsewhere (a call, an index).
func leftIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockBase reduces a lock key to its final segment, so lock-order
// pairs compare across functions with different receiver names.
func lockBase(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// inspectShallow walks a node but stays inside the current execution
// context: nested function literals and deferred calls are skipped.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		if m == nil {
			return false
		}
		return fn(m)
	})
}

// writeTargets marks the selector expressions a node mutates through: a
// direct assignment, an element write (s.m[k] = v writes into the field
// s.m), a delete, or taking the field's address (the pointer escapes to
// a callee that may write through it — SnapshotInto(&s.scratch)).
func writeTargets(n ast.Node) map[*ast.SelectorExpr]bool {
	writes := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				writes[x] = true
				return
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return
			}
		}
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(m.X)
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				mark(m.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "delete" && len(m.Args) > 0 {
				mark(m.Args[0])
			}
		}
		return true
	})
	return writes
}

// localConstructions collects the variables a function body itself
// constructs — `x := &T{...}`, `x := T{...}`, `x := new(T)`, and plain
// `var x T` declarations. Guarded-field accesses rooted in them are
// exempt: until the value is published, no other goroutine can hold a
// reference, which is what makes unsynchronized constructor
// initialization legal.
func localConstructions(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	roots := map[types.Object]bool{}
	constructs := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
				return lit
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
				_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
				return isBuiltin
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !constructs(n.Rhs[i]) {
					continue
				}
				if obj := pkg.Info.Defs[id]; obj != nil {
					roots[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 && n.Type != nil {
				for _, id := range n.Names {
					if obj := pkg.Info.Defs[id]; obj != nil {
						roots[obj] = true
					}
				}
			}
		}
		return true
	})
	return roots
}

func sortedKeys(keys []string) []string {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// shortPath trims a file path to its final two segments for messages.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}
