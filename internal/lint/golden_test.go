package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantPattern extracts the backquoted regexes of one `// want` comment.
var wantPattern = regexp.MustCompile("`([^`]+)`")

// want is one expectation parsed from a fixture: a regex the message of a
// diagnostic at file:line must match.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants collects the `// want ...` expectations of every .go file in
// dir. Multiple backquoted patterns on one line expect multiple
// diagnostics there.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path, err := filepath.Abs(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			ms := wantPattern.FindAllStringSubmatch(line[idx:], -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: `// want` comment without backquoted pattern", path, i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: path, line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no expectations", dir)
	}
	return wants
}

// runGolden lints one fixture package and checks its findings against the
// `// want` expectations: every diagnostic must match an expectation on
// its line, and every expectation must be hit.
func runGolden(t *testing.T, cfg *Config, fixture string) {
	t.Helper()
	diags, err := Run(cfg, "", nil, "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	wants := parseWants(t, filepath.Join("testdata", "src", fixture))
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestGoldenDeterminism(t *testing.T) {
	runGolden(t, DefaultConfig(), "determinism")
}

// TestGoldenNoallocAST checks the syntax-level pass alone; the escape
// gate is off so the expectations stay exactly the AST findings.
func TestGoldenNoallocAST(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EscapeGate = false
	runGolden(t, cfg, "noalloc")
}

// TestGoldenNoallocEscape proves the compiler-backed gate: the fixture
// functions are AST-clean, every finding below comes from `go tool
// compile -m` — including a parameter moved to the heap.
func TestGoldenNoallocEscape(t *testing.T) {
	runGolden(t, DefaultConfig(), "noallocescape")
}

func TestGoldenSinkPassivity(t *testing.T) {
	runGolden(t, DefaultConfig(), "sinkpassivity")
}

func TestGoldenSendCheck(t *testing.T) {
	runGolden(t, DefaultConfig(), "sendcheck")
}

func TestGoldenLockDiscipline(t *testing.T) {
	runGolden(t, DefaultConfig(), "lockdiscipline")
}

func TestGoldenGoroutineLife(t *testing.T) {
	runGolden(t, DefaultConfig(), "goroutinelife")
}

func TestGoldenParIdiom(t *testing.T) {
	runGolden(t, DefaultConfig(), "paridiom")
}

// TestRealTreeClean pins the repository's own code at zero findings under
// the default configuration — the same invocation CI runs.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module through the escape gate")
	}
	diags, err := Run(DefaultConfig(), "../..", nil, "./...")
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on clean tree: %s", d)
	}
}
