// Package lint is spyker-lint: a repository-specific static analyzer
// that turns the invariants this codebase's correctness story rests on —
// invariants the Go compiler cannot see — into compile-time checks. It is
// built on the standard library only (go/parser + go/types, with package
// metadata from `go list -json` and type information for imports from the
// build cache's export data), so it adds no module dependency; the driver
// lives in cmd/spyker-lint and CI runs it before the test steps.
//
// # Analyzers
//
// determinism — the discrete-event emulation must be bit-for-bit
// reproducible, so in the deterministic layers (internal/tensor, nn,
// paramvec, data, fl, simulation, geo, spyker, baselines, compress,
// metrics, cluster) three nondeterminism sources are forbidden:
// time.Now/time.Since, the global math/rand convenience functions
// (constructing a seeded *rand.Rand via rand.New/rand.NewSource stays
// legal — every stochastic component takes an explicit seed), and `range`
// over a map, whose iteration order is randomized by the runtime. A map
// range is waived by a //lint:sorted comment on the statement's line or
// the line above; the waiver asserts the loop is iteration-order
// independent — either the collected keys are sorted before any
// order-sensitive use, or the loop body is a commutative reduction or
// map-to-map copy.
//
// noalloc — functions annotated //spyker:noalloc (the paramvec fused
// kernels, the ServerCore aggregation arithmetic, and the live runtime's
// pooled receive path) must not allocate. The analyzer rejects, at the
// AST level: make/new/append, composite literals that allocate (slice and
// map literals, and &T{} pointer literals; plain value struct literals
// are stack values and are left to the escape gate), string
// concatenation, string<->[]byte/[]rune conversions, closures, interface
// boxing of non-pointer-shaped values, and any call into package fmt.
// Calls to other functions are permitted — an allocation inside a callee
// is attributed to the callee, which keeps annotations composable (a
// kernel may call another kernel, and a guarded observability emission
// may call into obs). On top of the AST pass, an escape-analysis gate
// compiles each annotated package with `go tool compile -m` (via an
// importcfg assembled from `go list -export`) and flags every
// "escapes to heap" / "moved to heap" diagnostic whose position falls
// inside an annotated function — catching what the AST cannot, e.g. a
// parameter whose address escapes. Escapes of constant string literals
// are ignored: they are static rodata, not runtime allocations.
//
// sinkpassivity — obs.Sink implementations must stay passive: enabling
// observability may never feed back into the schedule. In every package
// except internal/obs itself (whose sinks own the obs state by
// definition), the Emit and Enabled methods of any type implementing
// obs.Sink may neither write package-level state outside internal/obs nor
// call back into internal/spyker, internal/simulation, or internal/live.
//
// sendcheck — send/encode calls on the live wire may not drop their
// errors silently. A call to an error-returning function or method of
// internal/transport or internal/live whose name starts with Send, Recv,
// Encode, Write, or Broadcast (plus gob/json Encode/Decode calls inside
// the SendPkgs, which also cover the monitoring plane: cmd/spyker-mon
// and cmd/spyker-live) must consume the error; discarding it explicitly
// with `_ =` is the documented idiom for fire-and-forget teardown paths
// and stays legal, while a bare call statement (or go/defer) is flagged.
//
// The three concurrency analyzers below share an intraprocedural CFG +
// dataflow engine (cfg.go): basic blocks over go/ast with branch, loop,
// defer, and panic edges, and an iterative forward fixpoint driver that
// runs both must-analyses (meet = intersection, for "lock held on all
// paths") and may-analyses (meet = union).
//
// lockdiscipline — the mutex protocol. A struct field annotated
// //spyker:guardedby(mu) may only be accessed with the sibling mutex mu
// held (Lock or RLock) on every CFG path to the access; element writes
// (s.m[k] = v), deletes, and taking the field's address all count as
// writes to the field. A function annotated //spyker:locked(mu) is
// analyzed with mu held on entry, and same-package callers are checked
// to hold it at the call site (receiver aliasing through pure views
// like s := (*Server)(o) is resolved). Independent of annotations,
// every function is screened for double acquisition of a held mutex and
// for locks that may still be held at a return — the unlock must
// post-dominate the lock or be deferred — and each file is screened for
// lock-order inversion between mutex pairs. Finally, a completeness
// rule: once a struct has any guarded field, writing an unannotated
// non-mutex sibling while one of the struct's guard locks is held is
// flagged — either the annotation is missing or the write does not
// belong under the lock. This is what keeps the annotation set
// load-bearing instead of decorative.
//
// goroutinelife — goroutines in the runtime packages (RuntimePkgs) must
// not leak. Every `go` statement must be tied to a shutdown mechanism
// the analyzer can see: a sync.WaitGroup Done whose Wait is visible in
// the package, a captured done/stop channel the body receives from or
// ranges over, a bounded (loop-free) body, or an explicit
// //spyker:detached(reason) waiver on the statement (the documented
// escape hatch for process-lifetime servers like the debug HTTP
// endpoints, whose listeners the kernel reclaims at exit).
//
// paridiom — the sanctioned parallel-kernel form for the multicore work
// (ROADMAP item 3). In the deterministic layers, a worker pool must use
// fixed compile-time-visible chunk boundaries and an ordered combine:
// workers write disjoint elements of an indexed result slice, and a
// sequential loop reduces the slice afterwards. Receiving partial
// results from a channel in completion order and folding them as they
// arrive is flagged (floating-point reduction is order-sensitive), as
// is accumulating into shared state from inside the workers. A loop
// whose combine is provably order-independent carries
// //spyker:ordered(reason).
//
// # Annotation contract
//
// //spyker:noalloc goes on the doc comment of a function or method. It
// promises that the function's own statements perform no heap allocation
// on any path: the AST pass enforces the constructs above, and the escape
// gate enforces the compiler's escape verdicts for the function body.
// The contract is per-function, not transitive — callees are checked only
// if they carry their own annotation — and map writes (which may grow the
// map) remain the annotated function's responsibility. The annotation is
// the static counterpart of the BENCH_4.json half-allocation guard: the
// perf suite proves the aggregation hot path runs at 0 allocs/op, the
// annotation pins which functions that property lives in.
//
// //lint:sorted goes on (or directly above) a `range` statement over a
// map in a deterministic layer and documents why the iteration is safe;
// prefer sorting the keys first and iterating the sorted slice where the
// order reaches protocol, scheduling, or aggregation state.
//
// //spyker:guardedby(mu) goes on a struct field (trailing comment or
// doc comment) and names a sibling sync.Mutex or sync.RWMutex field;
// naming a mutex that does not exist is itself a finding. Constructor
// writes to a value built in the same function (x := &T{}, new(T),
// var x T) are exempt — no other goroutine can hold a reference yet.
//
// //spyker:locked(mu) goes on the doc comment of a function or method
// and declares the named mutex held by the caller on entry. The body is
// checked under that assumption, and same-package call sites are
// checked to actually hold it.
//
// //spyker:detached(reason) goes on (or directly above) a `go`
// statement in a runtime package and waives the shutdown-tie
// requirement; the reason must say why the goroutine may outlive its
// spawner. An empty reason is a finding.
//
// //spyker:ordered(reason) goes on (or directly above) a loop in a
// deterministic layer that folds parallel partial results, and asserts
// the combine is order-independent (e.g. integer summation, set union).
// An empty reason is a finding.
package lint
