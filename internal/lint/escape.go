package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// escapeLine matches one `go tool compile -m` diagnostic.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// constStringEscape matches escape reports about constant string
// literals ("..." escapes to heap): those land in static read-only data,
// not on the runtime heap, so they are no allocation.
var constStringEscape = regexp.MustCompile(`^".*" escapes to heap$`)

// escapeGate compiles pkg with the gc compiler's -m diagnostics and flags
// every heap allocation or escape the compiler attributes to a line
// inside a //spyker:noalloc function. This catches what the AST pass
// cannot: a parameter whose address escapes, a variable moved to the heap
// by a later use, or an allocating call the inliner folded into the
// annotated body.
//
// The compiler is invoked directly (not through `go build`) so the
// diagnostics are produced on every run instead of only on build-cache
// misses; the import graph comes from the export data `go list -export`
// already materialized during Load.
func escapeGate(pkg *Package, fns []noallocFn) []Diagnostic {
	gateErr := func(err error) []Diagnostic {
		return []Diagnostic{{
			Analyzer: "noalloc",
			Rule:     "noalloc/gate-error",
			File:     pkg.GoFiles[0],
			Line:     1,
			Col:      1,
			Message:  fmt.Sprintf("escape-analysis gate failed: %v", err),
		}}
	}

	tmp, err := os.MkdirTemp("", "spyker-lint-escape-")
	if err != nil {
		return gateErr(err)
	}
	defer os.RemoveAll(tmp)

	var cfg bytes.Buffer
	paths := make([]string, 0, len(pkg.exports))
	for ip := range pkg.exports {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if ip == pkg.ImportPath {
			continue
		}
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", ip, pkg.exports[ip])
	}
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, cfg.Bytes(), 0o644); err != nil {
		return gateErr(err)
	}

	args := []string{
		"tool", "compile",
		"-p", pkg.ImportPath,
		"-importcfg", cfgPath,
		"-m",
		"-o", filepath.Join(tmp, "pkg.a"),
	}
	args = append(args, pkg.GoFiles...)
	cmd := exec.Command("go", args...)
	// The compiler prints -m diagnostics on stdout and errors on stderr;
	// the gate wants both in one stream.
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return gateErr(fmt.Errorf("go tool compile %s: %v\n%s", pkg.ImportPath, err, firstLines(out.String(), 10)))
	}

	var diags []Diagnostic
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if constStringEscape.MatchString(msg) {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		for _, fn := range fns {
			if m[1] == fn.file && lineNo >= fn.start && lineNo <= fn.end {
				diags = append(diags, Diagnostic{
					Analyzer: "noalloc",
					Rule:     "noalloc/escape",
					File:     m[1],
					Line:     lineNo,
					Col:      colNo,
					Message:  fmt.Sprintf("escape analysis: %s in //spyker:noalloc function %s", msg, fn.name),
				})
				break
			}
		}
	}
	return diags
}

// firstLines truncates s to its first n lines for error messages.
func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = append(lines[:n], "...")
	}
	return strings.Join(lines, "\n")
}
