package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sendPrefixes are the operation families on the wire packages whose
// error results carry delivery outcomes.
var sendPrefixes = []string{"Send", "Recv", "Encode", "Write", "Broadcast"}

// runSendCheck flags transport/live send and encode calls whose error
// result is silently dropped: used as a bare statement, or launched via
// go/defer. Explicitly discarding with `_ = conn.Close()` style blank
// assignment stays legal — that is the documented idiom for teardown
// paths where the peer vanishing is an orderly outcome.
func runSendCheck(cfg *Config, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(call *ast.CallExpr, how string) {
		f := pkg.calleeFunc(call)
		if f == nil || !returnsError(f) {
			return
		}
		path := pkgPathOf(f)
		watched := hasPkgSuffix(path, cfg.SendPkgs) && hasSendPrefix(f.Name())
		// Inside the wire packages themselves, the raw gob/json codec
		// calls are the send path; dropping their errors hides a dead
		// connection.
		if !watched && hasPkgSuffix(pkg.ImportPath, cfg.SendPkgs) {
			watched = (path == "encoding/gob" || path == "encoding/json") &&
				(strings.HasPrefix(f.Name(), "Encode") || strings.HasPrefix(f.Name(), "Decode"))
		}
		if !watched {
			return
		}
		diags = append(diags, pkg.diag("sendcheck", "dropped-error", call.Pos(),
			"%s error of %s.%s is dropped %s; handle it or discard explicitly with _ =",
			f.Name(), pkgBase(path), f.Name(), how))
	}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					flag(call, "by a bare call statement")
				}
			case *ast.GoStmt:
				flag(n.Call, "by go")
			case *ast.DeferStmt:
				flag(n.Call, "by defer")
			}
			return true
		})
	}
	return diags
}

// returnsError reports whether f's last result is the error type.
func returnsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// hasSendPrefix reports whether a function name belongs to the watched
// send/encode operation families. The match ignores export case so the
// monitoring commands' unexported writeX/sendX helpers are covered.
func hasSendPrefix(name string) bool {
	for _, p := range sendPrefixes {
		if len(name) >= len(p) && strings.EqualFold(name[:len(p)], p) {
			return true
		}
	}
	return false
}

// pkgBase renders the last path segment for messages.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
