package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than draw from the global source; they are the
// sanctioned way to randomness in the deterministic layers.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// runDeterminism enforces the reproducibility contract of the emulation
// stack: no wall-clock reads, no global-source randomness, and no map
// iteration whose order can reach protocol or scheduling state without a
// //lint:sorted waiver.
func runDeterminism(cfg *Config, pkg *Package) []Diagnostic {
	if !hasPkgSuffix(pkg.ImportPath, cfg.DeterministicPkgs) {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		waived := waiverLines(pkg, file, "lint:sorted")
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if d, ok := checkDeterministicCall(pkg, n); ok {
					diags = append(diags, d)
				}
			case *ast.RangeStmt:
				t := pkg.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				line := pkg.Fset.Position(n.Pos()).Line
				if waived[line] || waived[line-1] {
					return true
				}
				diags = append(diags, pkg.diag("determinism", "map-range", n.Pos(),
					"range over map %s has nondeterministic iteration order; sort the keys or waive with //lint:sorted", types.TypeString(t, nil)))
			}
			return true
		})
	}
	return diags
}

// checkDeterministicCall flags time.Now/time.Since and draws from the
// global math/rand source.
func checkDeterministicCall(pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	f := pkg.calleeFunc(call)
	if f == nil {
		return Diagnostic{}, false
	}
	path := pkgPathOf(f)
	switch {
	case path == "time" && (f.Name() == "Now" || f.Name() == "Since"):
		return pkg.diag("determinism", "wall-clock", call.Pos(),
			"call to time.%s in deterministic package %s; thread the simulation clock instead", f.Name(), pkg.ImportPath), true
	case path == "math/rand" || path == "math/rand/v2":
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Recv() != nil || randConstructors[f.Name()] {
			return Diagnostic{}, false // *rand.Rand method or seeded constructor: legal
		}
		return pkg.diag("determinism", "global-rand", call.Pos(),
			"call to global rand.%s draws from the unseeded process-wide source; use a seeded *rand.Rand", f.Name()), true
	}
	return Diagnostic{}, false
}

// waiverLines collects the source lines carrying a //<directive> comment
// in file. A statement is waived when its own line or the line above
// carries the directive.
func waiverLines(pkg *Package, file *ast.File, directive string) map[int]bool {
	lines := make(map[int]bool)
	for _, group := range file.Comments {
		for _, c := range group.List {
			if strings.HasPrefix(c.Text, "//"+directive) {
				lines[pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
