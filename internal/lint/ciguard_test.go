package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestRaceListCoversConcurrentPackages guards the hand-maintained CI
// race list against drift: any package whose non-test sources contain a
// `go` statement or a sync.Mutex/RWMutex struct field is concurrent by
// construction and must appear in the `go test -race` step of
// .github/workflows/ci.yml. A new goroutine or mutex in a package the
// list forgot fails here with the package and the reason, instead of
// shipping unraced.
func TestRaceListCoversConcurrentPackages(t *testing.T) {
	root := findModuleRoot(t)
	listed := raceList(t, root)
	concurrent := concurrentPackages(t, root)

	pkgs := make([]string, 0, len(concurrent))
	for pkg := range concurrent {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	if len(pkgs) == 0 {
		t.Fatal("found no concurrent packages at all; the detector is broken")
	}
	for _, pkg := range pkgs {
		if !listed[pkg] {
			t.Errorf("package ./%s has %s but is missing from the `go test -race` list in .github/workflows/ci.yml",
				pkg, concurrent[pkg])
		}
	}
}

// findModuleRoot walks up from the test's working directory to go.mod.
func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// raceList extracts the package arguments of the `go test -race` CI step
// as module-relative slash paths ("internal/live").
func raceList(t *testing.T, root string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(root, ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatalf("reading CI workflow: %v", err)
	}
	m := regexp.MustCompile(`(?m)^\s*run:\s*go test -race (.+)$`).FindStringSubmatch(string(raw))
	if m == nil {
		t.Fatal("ci.yml has no `run: go test -race ...` step to guard")
	}
	listed := map[string]bool{}
	for _, f := range strings.Fields(m[1]) {
		if strings.HasPrefix(f, "-") {
			continue
		}
		listed[strings.TrimPrefix(f, "./")] = true
	}
	if len(listed) == 0 {
		t.Fatal("race step lists no packages")
	}
	return listed
}

// concurrentPackages maps each module-relative package directory whose
// non-test sources spawn goroutines or declare mutex fields to a short
// human reason.
func concurrentPackages(t *testing.T, root string) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	found := map[string]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		reason := concurrencyMarker(file)
		if reason == "" {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkg := filepath.ToSlash(rel)
		if found[pkg] == "" || reason < found[pkg] {
			found[pkg] = reason
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	return found
}

// concurrencyMarker reports why a file makes its package concurrent: a
// `go` statement, or a struct field of type sync.Mutex/RWMutex (named,
// embedded, or pointer). Empty means neither.
func concurrencyMarker(file *ast.File) string {
	reason := ""
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			reason = "a `go` statement"
			return false
		case *ast.StructType:
			for _, f := range n.Fields.List {
				typ := f.Type
				if star, ok := typ.(*ast.StarExpr); ok {
					typ = star.X
				}
				if sel, ok := typ.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sync" &&
						(sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex") {
						reason = "a sync." + sel.Sel.Name + " field"
						return false
					}
				}
			}
		}
		return reason == ""
	})
	return reason
}
