package lint

import (
	"go/ast"
	"go/token"
)

// cfg.go is the intraprocedural control-flow engine the concurrency
// analyzers (lockdiscipline, goroutinelife, paridiom) are built on: a
// basic-block CFG over go/ast with branch, loop, defer, and panic
// edges, plus a small iterative forward dataflow driver. It stays
// deliberately syntactic — one CFG per function body, no
// interprocedural edges — because every discipline the analyzers
// enforce is phrased per-function, with annotations carrying facts
// across call boundaries.

// cfgBlock is one basic block: a maximal straight-line run of
// statements and conditions with one entry point. Compound statements
// are decomposed — an if contributes its init and condition to the
// current block and fresh blocks for the arms — while simple
// statements (assignments, calls, sends, go, defer) are appended
// whole; dataflow transfer functions inspect inside them.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. exit is
// virtual: every return, panic, and fall-off-the-end edge lands there,
// and the recorded deferred calls run on each of those paths.
type funcCFG struct {
	entry    *cfgBlock
	exit     *cfgBlock
	blocks   []*cfgBlock
	deferred []*ast.CallExpr
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}, labels: map[string]*labelTarget{}}
	b.g.exit = b.newBlock() // index 0, repositioned below
	b.cur = b.newBlock()
	b.g.entry = b.cur
	b.stmtList(body.List)
	b.terminate(b.g.exit) // fall off the end
	for _, pg := range b.gotos {
		if t, ok := b.labels[pg.label]; ok && t.block != nil {
			pg.from.succs = append(pg.from.succs, t.block)
		}
	}
	return b.g
}

// labelTarget is the resolution of one label: the block the labeled
// statement starts in (for goto) and, when the label names a loop or
// switch, its break and continue destinations.
type labelTarget struct {
	block         *cfgBlock
	brk, cont     *cfgBlock
	expectingLoop bool // the next loop/switch built adopts brk/cont
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock // nil while the current path is terminated

	breaks    []*cfgBlock
	continues []*cfgBlock
	fallto    []*cfgBlock // fallthrough target stack, one per case body
	labels    map[string]*labelTarget
	curLabel  *labelTarget // label awaiting the loop it names
	gotos     []pendingGoto
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// startBlock opens a fresh block reachable from the current one.
func (b *cfgBuilder) startBlock() *cfgBlock {
	blk := b.newBlock()
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, blk)
	}
	b.cur = blk
	return blk
}

// add appends a node to the current block, reviving an unreachable
// block for dead code so its nodes still exist in the graph.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable: no predecessors
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// terminate ends the current path with an edge to dst.
func (b *cfgBuilder) terminate(dst *cfgBlock) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, dst)
		b.cur = nil
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		t := &labelTarget{expectingLoop: true}
		b.labels[s.Label.Name] = t
		t.block = b.startBlock()
		b.curLabel = t
		b.stmt(s.Stmt)
		b.curLabel = nil

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.cur
		if cond == nil {
			cond = b.startBlock()
		}
		b.cur = cond
		thenBlk := b.newBlock()
		cond.succs = append(cond.succs, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *cfgBlock
		hasElse := s.Else != nil
		if hasElse {
			elseBlk := b.newBlock()
			cond.succs = append(cond.succs, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		if !hasElse {
			cond.succs = append(cond.succs, join)
		}
		if thenEnd != nil {
			thenEnd.succs = append(thenEnd.succs, join)
		}
		if elseEnd != nil {
			elseEnd.succs = append(elseEnd.succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.startBlock()
		b.add(s.Cond)
		exit := b.newBlock()
		if s.Cond != nil {
			head.succs = append(head.succs, exit)
		}
		// continue lands on the post statement when there is one.
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.adoptLabel(exit, cont)
		body := b.newBlock()
		head.succs = append(head.succs, body)
		b.cur = body
		b.pushLoop(exit, cont)
		b.stmt(s.Body)
		b.popLoop()
		if s.Post != nil {
			b.terminate(post)
			b.cur = post
			b.add(s.Post)
			b.terminate(head)
		} else {
			b.terminate(head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.startBlock()
		head.nodes = append(head.nodes, s.X)
		exit := b.newBlock()
		head.succs = append(head.succs, exit)
		b.adoptLabel(exit, head)
		body := b.newBlock()
		head.succs = append(head.succs, body)
		b.cur = body
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.pushLoop(exit, head)
		b.stmt(s.Body)
		b.popLoop()
		b.terminate(head)
		b.cur = exit

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.caseClauses(s.Body, false)

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.caseClauses(s.Body, false)

	case *ast.SelectStmt:
		b.selectClauses(s.Body)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.terminate(b.branchTarget(s.Label, true))
		case token.CONTINUE:
			b.terminate(b.branchTarget(s.Label, false))
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
				b.cur = nil
			}
		case token.FALLTHROUGH:
			if n := len(b.fallto); n > 0 && b.fallto[n-1] != nil {
				b.terminate(b.fallto[n-1])
			}
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.deferred = append(b.g.deferred, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.terminate(b.g.exit)
			}
		}

	default:
		// Assign, IncDec, Go, Send, Decl, Empty: straight-line nodes.
		b.add(s)
	}
}

// caseClauses builds the blocks of a switch body: every case is a
// successor of the head block, fallthrough chains to the next case, and
// a missing default adds the head→join edge.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, _ bool) {
	head := b.cur
	if head == nil {
		head = b.startBlock()
	}
	join := b.newBlock()
	b.adoptLabel(join, nil)

	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		caseBlocks[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.succs = append(head.succs, join)
	}
	for i, cc := range clauses {
		head.succs = append(head.succs, caseBlocks[i])
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		next := (*cfgBlock)(nil)
		if i+1 < len(clauses) {
			next = caseBlocks[i+1]
		}
		b.fallto = append(b.fallto, next)
		b.pushBreak(join)
		b.stmtList(cc.Body)
		b.popBreak()
		b.fallto = b.fallto[:len(b.fallto)-1]
		b.terminate(join)
	}
	b.cur = join
}

// selectClauses builds a select: each communication clause is a
// successor of the head; with no default the select blocks until one
// fires, so there is no head→join edge.
func (b *cfgBuilder) selectClauses(body *ast.BlockStmt) {
	head := b.cur
	if head == nil {
		head = b.startBlock()
	}
	join := b.newBlock()
	b.adoptLabel(join, nil)
	any := false
	for _, s := range body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		head.succs = append(head.succs, blk)
		b.cur = blk
		b.add(cc.Comm)
		b.pushBreak(join)
		b.stmtList(cc.Body)
		b.popBreak()
		b.terminate(join)
	}
	if !any {
		// `select {}` blocks forever: the path ends here.
		head.succs = append(head.succs, b.g.exit)
	}
	b.cur = join
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushBreak(brk *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, nil)
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

// adoptLabel wires a pending statement label to the construct being
// built, so `break L` / `continue L` resolve.
func (b *cfgBuilder) adoptLabel(brk, cont *cfgBlock) {
	if b.curLabel != nil && b.curLabel.expectingLoop {
		b.curLabel.brk = brk
		b.curLabel.cont = cont
		b.curLabel.expectingLoop = false
	}
}

// branchTarget resolves break/continue, labeled or not, to its block.
// Unresolvable branches (malformed code) fall through to exit.
func (b *cfgBuilder) branchTarget(label *ast.Ident, isBreak bool) *cfgBlock {
	if label != nil {
		if t, ok := b.labels[label.Name]; ok {
			if isBreak && t.brk != nil {
				return t.brk
			}
			if !isBreak && t.cont != nil {
				return t.cont
			}
		}
		return b.g.exit
	}
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if isBreak {
			return b.breaks[i]
		}
		if b.continues[i] != nil {
			return b.continues[i]
		}
	}
	return b.g.exit
}

// ---- dataflow driver ----

// flowSet is a dataflow fact: a set of strings (lock names, for
// lockdiscipline). nil is ⊤ — "unreached" — distinct from the empty
// set; the meet operator treats it as the identity.
type flowSet map[string]bool

func (s flowSet) clone() flowSet {
	if s == nil {
		return nil // ⊤ clones to ⊤, not to the empty set — the meet
		// identity must survive cloning or must-analyses lose monotonicity
	}
	c := make(flowSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s flowSet) equal(t flowSet) bool {
	if (s == nil) != (t == nil) || len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

// meet combines predecessor facts: intersection for a must-analysis
// (union=false), union for a may-analysis. nil operands are ⊤.
func meet(a, b flowSet, union bool) flowSet {
	if a == nil {
		return b.clone()
	}
	if b == nil {
		return a.clone()
	}
	out := make(flowSet)
	if union {
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// forward runs an iterative forward dataflow to fixpoint and returns
// the fact at the entry of every block (and, via funcCFG.exit, at
// function exit). transfer folds one node into a fact and must treat
// its input as immutable, returning a (possibly shared) new set.
// union=false is the must-variant (a fact holds on all paths),
// union=true the may-variant (on some path).
func (g *funcCFG) forward(entry flowSet, union bool, transfer func(n ast.Node, in flowSet) flowSet) map[*cfgBlock]flowSet {
	preds := make(map[*cfgBlock][]*cfgBlock)
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	in := make(map[*cfgBlock]flowSet, len(g.blocks))
	out := make(map[*cfgBlock]flowSet, len(g.blocks))
	in[g.entry] = entry.clone()

	changed := true
	for rounds := 0; changed && rounds < 4*len(g.blocks)+8; rounds++ {
		changed = false
		for _, blk := range g.blocks {
			var blkIn flowSet
			if blk == g.entry {
				blkIn = entry.clone()
			} else {
				for _, p := range preds[blk] {
					blkIn = meet(blkIn, out[p], union)
				}
			}
			if blkIn == nil {
				continue // unreached so far
			}
			if !blkIn.equal(in[blk]) {
				in[blk] = blkIn
				changed = true
			}
			blkOut := blkIn
			for _, n := range blk.nodes {
				blkOut = transfer(n, blkOut)
			}
			if !blkOut.equal(out[blk]) {
				out[blk] = blkOut
				changed = true
			}
		}
	}
	return in
}
