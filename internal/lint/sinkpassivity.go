package lint

import (
	"go/ast"
	"go/types"
)

// runSinkPassivity enforces the passivity contract of obs.Sink: an
// implementation outside internal/obs only records — its Emit/Enabled
// methods may not mutate package-level state (anywhere but obs) and may
// not call back into the runtimes (internal/spyker, internal/simulation,
// internal/live), because either would let "enable tracing" change a
// schedule the determinism regression tests promise it cannot change.
func runSinkPassivity(cfg *Config, pkg *Package) []Diagnostic {
	if hasPkgSuffix(pkg.ImportPath, []string{"internal/obs"}) {
		return nil // obs's own sinks own the obs state by definition
	}
	sinkIface := findSinkInterface(pkg)
	if sinkIface == nil {
		return nil // cannot implement obs.Sink without importing obs
	}

	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Emit" && fd.Name.Name != "Enabled" {
				continue
			}
			recv := receiverNamed(pkg, fd)
			if recv == nil || !implementsSink(recv, sinkIface) {
				continue
			}
			diags = append(diags, checkSinkMethod(cfg, pkg, recv, fd)...)
		}
	}
	return diags
}

// findSinkInterface resolves obs.Sink through the package's imports.
func findSinkInterface(pkg *Package) *types.Interface {
	for _, imp := range pkg.Types.Imports() {
		if !hasPkgSuffix(imp.Path(), []string{"internal/obs"}) {
			continue
		}
		obj := imp.Scope().Lookup("Sink")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// receiverNamed returns the named type a method is declared on.
func receiverNamed(pkg *Package, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// implementsSink reports whether T or *T satisfies obs.Sink.
func implementsSink(named *types.Named, iface *types.Interface) bool {
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}

// checkSinkMethod walks one sink method body.
func checkSinkMethod(cfg *Config, pkg *Package, recv *types.Named, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	sinkName := recv.Obj().Name()

	flagWrite := func(e ast.Expr) {
		v := rootVar(pkg, e)
		if v == nil || v.Pkg() == nil {
			return
		}
		if v.Parent() != v.Pkg().Scope() {
			return // local or field state: the sink's own business
		}
		if hasPkgSuffix(v.Pkg().Path(), []string{"internal/obs"}) {
			return
		}
		diags = append(diags, pkg.diag("sinkpassivity", "state-write", e.Pos(),
			"sink %s.%s writes package-level state %s.%s outside internal/obs",
			sinkName, fd.Name.Name, v.Pkg().Name(), v.Name()))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flagWrite(lhs)
			}
		case *ast.IncDecStmt:
			flagWrite(n.X)
		case *ast.CallExpr:
			if f := pkg.calleeFunc(n); f != nil && hasPkgSuffix(pkgPathOf(f), cfg.SinkCallbackPkgs) {
				diags = append(diags, pkg.diag("sinkpassivity", "runtime-callback", n.Pos(),
					"sink %s.%s calls back into %s (%s): sinks must stay passive",
					sinkName, fd.Name.Name, f.Pkg().Path(), f.Name()))
			}
		}
		return true
	})
	return diags
}

// rootVar walks selectors, indexing, and dereferences down to the
// variable an lvalue expression is rooted in (nil when the root is not a
// plain variable, e.g. a call result).
func rootVar(pkg *Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := pkg.Info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			if _, isPkg := pkg.Info.Uses[rootIdent(x.X)].(*types.PkgName); isPkg {
				v, _ := pkg.Info.Uses[x.Sel].(*types.Var)
				return v
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootIdent unwraps an expression to its leading identifier, nil if the
// expression does not start with one.
func rootIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}
