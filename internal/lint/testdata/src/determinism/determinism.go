// Package determinism seeds violations for the determinism analyzer's
// golden test (internal/lint/golden_test.go). Like all testdata it is
// invisible to ./... wildcards; the golden test and the CLI tests lint it
// by explicit path and expect exactly the findings annotated below.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// Tick reads the wall clock and the global rand source — the two
// nondeterminism sources a deterministic layer must never touch.
func Tick() float64 {
	t := time.Now()       // want `call to time\.Now`
	_ = time.Since(t)     // want `call to time\.Since`
	return rand.Float64() // want `call to global rand\.Float64`
}

// Seeded is the sanctioned pattern: an explicitly seeded generator.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// SumAges walks a map bare: float accumulation order would leak the
// runtime's randomized iteration order into the result bits.
func SumAges(ages map[int]float64) float64 {
	var s float64
	for _, a := range ages { // want `range over map`
		s += a
	}
	return s
}

// SortedWalk collects, sorts, then uses — the waived idiom.
func SortedWalk(ages map[int]float64) []int {
	keys := make([]int, 0, len(ages))
	//lint:sorted keys are collected and sorted just below
	for k := range ages {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// TrailingWaiver carries the waiver on the statement's own line.
func TrailingWaiver(counts map[int]int) int {
	total := 0
	for _, c := range counts { //lint:sorted integer sum is commutative
		total += c
	}
	return total
}
