// Package sinkpassivity seeds violations of the obs.Sink passivity
// contract: a sink that mutates package-level state and one that calls
// back into the protocol core, next to a compliant sink that only records
// into its own fields.
package sinkpassivity

import (
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/spyker"
)

var hits int

// ChattySink breaks passivity twice: it counts emissions in a package
// global and re-drives the server core from inside Emit.
type ChattySink struct {
	core *spyker.ServerCore
	n    int
}

// Enabled implements obs.Sink.
func (c *ChattySink) Enabled() bool { return true }

// Emit implements obs.Sink.
func (c *ChattySink) Emit(e obs.Event) {
	hits++                          // want `writes package-level state sinkpassivity\.hits`
	c.n++                           // own field: the sink's business
	c.core.HandleAge(e.Peer, e.Age) // want `calls back into .*internal/spyker`
}

// QuietSink is the compliant shape: records into its own state only.
type QuietSink struct{ events []obs.Event }

// Enabled implements obs.Sink.
func (q *QuietSink) Enabled() bool { return true }

// Emit implements obs.Sink.
func (q *QuietSink) Emit(e obs.Event) { q.events = append(q.events, e) }
