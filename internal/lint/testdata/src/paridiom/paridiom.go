// Package paridiom seeds violations of the sanctioned parallel-kernel
// form: chunk boundaries taken from the machine, reductions ordered by
// channel delivery, and workers accumulating into shared captured
// state — next to the sanctioned shape (explicit worker count, fixed
// chunk boundaries, disjoint indexed results, sequential reduce after
// the join) and the //spyker:ordered waiver for order-insensitive
// reductions.
package paridiom

import (
	"runtime"
	"sync"
)

// badChunks sizes its pool from the machine and reduces in message
// order: neither the chunking nor the float summation is reproducible.
func badChunks(xs []float64) float64 {
	workers := runtime.NumCPU() // want `chunk boundaries derived from runtime\.NumCPU vary by machine`
	ch := make(chan float64)
	for w := 0; w < workers; w++ {
		go func(w int) {
			ch <- partial(xs, w, workers)
		}(w)
	}
	var sum float64
	for i := 0; i < workers; i++ {
		sum += <-ch // want `accumulating a channel receive orders the reduction by message arrival`
	}
	return sum
}

// badRange reduces over a channel: arrival order is scheduling order.
func badRange(xs []float64, ch chan float64) float64 {
	go produce(xs, ch)
	var sum float64
	for v := range ch { // want `reduction over a channel orders float accumulation by goroutine scheduling`
		sum += v
	}
	return sum
}

// badShared lets the workers race on one accumulator.
func badShared(xs []float64, workers int) float64 {
	var sum float64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sum += partial(xs, w, workers) // want `worker accumulates into captured sum`
		}(w)
	}
	wg.Wait()
	return sum
}

// kernel is the sanctioned form: explicit worker count, fixed chunk
// boundaries computed from it, each worker owning one slot of an
// indexed result slice, and a sequential reduce after the join.
func kernel(xs []float64, workers int) float64 {
	parts := make([]float64, workers)
	chunk := (len(xs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := lo + chunk
			if lo > len(xs) {
				lo = len(xs)
			}
			if hi > len(xs) {
				hi = len(xs)
			}
			var p float64
			for _, v := range xs[lo:hi] {
				p += v
			}
			parts[w] = p
		}(w)
	}
	wg.Wait()
	var sum float64
	for _, p := range parts {
		sum += p
	}
	return sum
}

// waivedCount reduces integers off a channel: associative and
// order-insensitive, so the waiver applies.
func waivedCount(items []int, ch chan int, workers int) int {
	for w := 0; w < workers; w++ {
		go count(items, ch)
	}
	total := 0
	for i := 0; i < workers; i++ {
		total += <-ch //spyker:ordered(integer addition is associative; arrival order cannot change the result)
	}
	return total
}

// emptyWaiver asserts nothing.
func emptyWaiver(items []int, ch chan int) int {
	go count(items, ch)
	total := 0
	total += <-ch //spyker:ordered() // want `//spyker:ordered waiver needs a non-empty reason`
	return total
}

func partial(xs []float64, w, workers int) float64 {
	var p float64
	for i := w; i < len(xs); i += workers {
		p += xs[i]
	}
	return p
}

func produce(xs []float64, ch chan float64) {
	for _, v := range xs {
		ch <- v
	}
	close(ch)
}

func count(items []int, ch chan int) {
	ch <- len(items)
}
