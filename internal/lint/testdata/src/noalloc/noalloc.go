// Package noalloc seeds every AST-level allocation construct the noalloc
// analyzer rejects inside //spyker:noalloc functions. Its golden test
// runs with the escape gate off so the expectations below are exactly the
// syntax-level findings; the compiler-backed gate is proven separately by
// the noallocescape fixture.
package noalloc

import "fmt"

type pair struct{ a, b int }

func takeAny(v interface{}) { _ = v }

// Hot trips every syntactic allocation source in one body.
//
//spyker:noalloc
func Hot(n int, s string) string {
	buf := make([]int, n)        // want `call to make allocates`
	buf = append(buf, n)         // want `call to append allocates`
	p := new(int)                // want `call to new allocates`
	lit := []int{1, 2}           // want `slice literal allocates`
	m := map[int]int{}           // want `map literal allocates`
	q := &pair{a: 1}             // want `address of composite literal allocates`
	msg := s + "!"               // want `string concatenation allocates`
	msg += s                     // want `string concatenation allocates`
	f := func() int { return n } // want `closure literal allocates`
	var boxed interface{} = n    // want `declaration boxes int`
	boxed = s                    // want `assignment boxes string`
	takeAny(n)                   // want `argument boxes int`
	_ = fmt.Sprintf("%d", n)     // want `call to fmt\.Sprintf allocates`
	b := []byte(s)               // want `string conversion allocates`
	_ = interface{}(n)           // want `conversion boxes int`
	_, _, _, _, _, _ = buf, p, lit, m, q, f
	_, _ = boxed, b
	return msg
}

// Axpy is the shape the annotation exists for: a pure in-place kernel.
// Value struct literals, calls, and arithmetic all pass.
//
//spyker:noalloc
func Axpy(a float64, x, y []float64) pair {
	for i := range y {
		y[i] += a * x[i]
	}
	return pair{a: len(x), b: len(y)}
}

// Cold is unannotated: the same constructs draw no findings.
func Cold(n int) []int {
	return append(make([]int, 0, n), n)
}
