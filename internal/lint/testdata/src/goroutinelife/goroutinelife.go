// Package goroutinelife seeds goroutine-lifecycle violations: looping
// goroutines with no shutdown tie, a WaitGroup signal nobody waits on,
// and a reasonless waiver — next to the sanctioned shapes (WaitGroup
// with a visible Wait, captured done channel, range over an
// owner-closed channel, bounded bodies, and a reasoned
// //spyker:detached waiver).
package goroutinelife

import (
	"sync"
	"time"
)

type runner struct {
	wg   sync.WaitGroup
	done chan struct{}
	ch   chan int
}

// leak loops forever with nothing to stop it.
func (r *runner) leak() {
	go func() { // want `goroutine loops with no shutdown tie`
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// tiedWG is the WaitGroup shape: Done in the body, Wait visible.
func (r *runner) tiedWG() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for i := 0; i < 10; i++ {
			time.Sleep(time.Millisecond)
		}
	}()
	r.wg.Wait()
}

var lone sync.WaitGroup

// noWait signals a WaitGroup the package never joins.
func noWait() {
	lone.Add(1)
	go func() { // want `goroutine signals WaitGroup lone but no Wait on lone is visible`
		defer lone.Done()
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// tiedDone polls a captured done channel: close(r.done) stops it.
func (r *runner) tiedDone() {
	go func() {
		for {
			select {
			case <-r.done:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

// drain ranges over a channel its owner closes.
func (r *runner) drain() {
	go func() {
		for v := range r.ch {
			_ = v
		}
	}()
}

// oneShot has no loop: it terminates by construction.
func (r *runner) oneShot() {
	go func() {
		r.ch <- 1
	}()
}

// localOnly makes its own channel inside the body; that is not a tie
// from the outside.
func localOnly() {
	go func() { // want `goroutine loops with no shutdown tie`
		own := make(chan int, 1)
		for {
			own <- 1
			<-own
		}
	}()
}

// waived documents why the goroutine outlives everything.
func (r *runner) waived() {
	//spyker:detached(debug listener is process-lifetime by design)
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

// emptyReason waives without saying why.
func (r *runner) emptyReason() {
	//spyker:detached()
	go func() { // want `//spyker:detached waiver needs a non-empty reason`
		for {
			time.Sleep(time.Second)
		}
	}()
}

// loopWorker is judged through its same-package declaration.
func loopWorker() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func spawnNamed() {
	go loopWorker() // want `goroutine loops with no shutdown tie`
}

// external launches a function this package cannot see into.
func external() {
	go time.Sleep(0) // want `goroutine runs a function defined outside this package`
}

type fakeSrv struct{}

func (fakeSrv) ListenAndServe() error { return nil }

// serveForever blocks in a serve entry point: loop-free, but unbounded.
func serveForever(s fakeSrv) {
	go func() { // want `goroutine blocks in ListenAndServe with no shutdown tie`
		_ = s.ListenAndServe()
	}()
}
