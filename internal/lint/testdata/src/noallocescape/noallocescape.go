// Package noallocescape proves the escape-analysis half of the noalloc
// analyzer: both functions below are clean at the AST level — no make, no
// literal, no closure — yet the compiler's escape analysis moves their
// locals to the heap, an allocation only `go tool compile -m` can see.
package noallocescape

var sink *int

// BoxParam returns the address of its parameter, forcing x onto the heap.
//
//spyker:noalloc
func BoxParam(x int) *int { // want `escape analysis: moved to heap: x`
	return &x
}

// LeakLocal publishes a local through a package-level pointer.
//
//spyker:noalloc
func LeakLocal(n int) {
	v := n * 2 // want `escape analysis: moved to heap: v`
	sink = &v
}

// Keep is escape-clean: the pointer never leaves the frame.
//
//spyker:noalloc
func Keep(x int) int {
	p := &x
	return *p * 2
}
