// Package lockdiscipline seeds mutex-protocol violations: guarded
// fields touched without their lock, a double acquisition, a leaked
// lock, a lock-order inversion, a caller ignoring a //spyker:locked
// contract, and an annotation naming a mutex that does not exist —
// next to the sanctioned shapes (lock/unlock pairs, deferred unlocks,
// RLock reads, caller-holds helpers, constructor initialization).
package lockdiscipline

import "sync"

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	count int            //spyker:guardedby(mu)
	data  []int          //spyker:guardedby(rw)
	byKey map[string]int //spyker:guardedby(mu)
	note  string
}

type badstore struct {
	n int //spyker:guardedby(gone) // want `//spyker:guardedby\(gone\): struct badstore has no sync\.Mutex/RWMutex field named gone`
}

// unguarded touches count with mu never held.
func (s *store) unguarded() int {
	s.count++      // want `write to store\.count \(//spyker:guardedby\(mu\)\) without holding s\.mu`
	return s.count // want `read of store\.count \(//spyker:guardedby\(mu\)\) without holding s\.mu`
}

// halfGuarded locks on only one branch, so the access is not dominated
// by the lock.
func (s *store) halfGuarded(lock bool) int {
	if lock {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.count // want `read of store\.count \(//spyker:guardedby\(mu\)\) without holding s\.mu`
}

// guarded is the sanctioned shape: every access dominated by Lock,
// unlock explicit or deferred.
func (s *store) guarded() int {
	s.mu.Lock()
	s.count = 1
	s.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// rlocked reads under RLock, which satisfies the guard.
func (s *store) rlocked() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.data[0]
}

// double acquires a lock it already holds.
func (s *store) double() {
	s.mu.Lock()
	s.mu.Lock() // want `acquiring s\.mu while it is already held deadlocks`
	s.mu.Unlock()
	s.mu.Unlock()
}

// leaky may return with mu still held: the unlock neither
// post-dominates the lock nor is deferred.
func (s *store) leaky(cond bool) { // want `s\.mu may still be held at return from leaky`
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	}
}

// trim runs with the caller's lock held.
//
//spyker:locked(mu)
func (s *store) trim() {
	s.count = 0
}

// callers must actually hold mu when calling trim.
func (s *store) resetLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trim()
}

func (s *store) resetUnlocked() {
	s.trim() // want `call to trim requires s\.mu held \(//spyker:locked\(mu\)\)`
}

// fresh initializes a just-constructed value: no other goroutine can
// hold a reference yet, so the unguarded writes are legal.
func fresh() *store {
	s := &store{}
	s.count = 7
	s.data = []int{1}
	return s
}

// sneak writes an unannotated sibling while holding a guard lock of an
// annotated struct: either the annotation is missing or the write does
// not belong under the lock.
func (s *store) sneak() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count = 0
	s.note = "x" // want `write to store\.note while s\.mu is held, but the field has no //spyker:guardedby annotation`
}

// readAside reads the unannotated sibling under the lock: reads are not
// flagged — only writes claim the field for the lock.
func (s *store) readAside() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.note
}

// putUnguarded writes an element of a guarded map with mu never held:
// an element write mutates the field just as a direct assignment does.
func (s *store) putUnguarded() {
	s.byKey["k"] = 1 // want `write to store\.byKey \(//spyker:guardedby\(mu\)\) without holding s\.mu`
}

// drain passes a guarded field's address out while holding only the
// wrong lock: taking the address counts as a write (the callee may
// mutate through the pointer).
func (s *store) drain(f func(*int)) {
	s.rw.Lock()
	defer s.rw.Unlock()
	f(&s.count) // want `write to store\.count \(//spyker:guardedby\(mu\)\) without holding s\.mu`
}

var ma, mb sync.Mutex

// orderAB and orderBA acquire the pair in opposite orders in one file:
// a latent deadlock.
func orderAB() {
	ma.Lock()
	mb.Lock() // want `lock order inversion: mb acquired while holding ma`
	mb.Unlock()
	ma.Unlock()
}

func orderBA() {
	mb.Lock()
	ma.Lock()
	ma.Unlock()
	mb.Unlock()
}
