// Package sendcheck seeds dropped-error violations on the wire API:
// transport sends and a live checkpoint write whose error results are
// silently discarded, next to the two sanctioned shapes (handling and
// explicit blank assignment).
package sendcheck

import (
	"io"

	"github.com/spyker-fl/spyker/internal/live"
	"github.com/spyker-fl/spyker/internal/transport"
)

// Fire drops transport send errors three ways.
func Fire(c *transport.Conn, m *transport.Msg) {
	c.Send(m)       // want `Send error of transport\.Send is dropped by a bare call statement`
	go c.Send(m)    // want `dropped by go`
	defer c.Send(m) // want `dropped by defer`
	_ = c.Send(m)   // explicit discard: sanctioned
	if err := c.Send(m); err != nil {
		_ = err
	}
}

// Checkpoint drops a live write error.
func Checkpoint(s *live.Server, w io.Writer) {
	s.WriteCheckpoint(w) // want `WriteCheckpoint error of live\.WriteCheckpoint is dropped`
}
