// Package compress implements the two standard federated-learning
// update-compression techniques — uniform 8-bit quantization and top-k
// delta sparsification — as an extension to the paper's system. Spyker is
// the most bandwidth-hungry algorithm of the paper's comparison
// (Fig. 12), which makes update compression the natural lever; the
// compression experiment measures how much traffic quantization saves at
// what accuracy cost.
package compress

import (
	"fmt"
	"math"
	"sort"
)

// Codec lossily encodes a model parameter vector for the wire. Roundtrip
// returns what the receiver would decode — simulations apply it to the
// payload so the accuracy impact of the compression is real — and
// WireBytes reports the encoded size used for bandwidth accounting.
type Codec interface {
	// Roundtrip encodes and immediately decodes params, returning the
	// lossy reconstruction. The input is not modified.
	Roundtrip(params []float64) []float64
	// WireBytes reports the encoded size of an n-parameter vector.
	WireBytes(n int) int
	// Name identifies the codec in experiment output.
	Name() string
}

// Raw is the identity codec: 8 bytes per parameter, no loss.
type Raw struct{}

var _ Codec = Raw{}

// Roundtrip implements Codec.
func (Raw) Roundtrip(params []float64) []float64 {
	return append([]float64(nil), params...)
}

// WireBytes implements Codec.
func (Raw) WireBytes(n int) int { return 8*n + 64 }

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Quantize8 is uniform 8-bit quantization: the vector's range [min,max]
// is split into 255 buckets; each parameter costs one byte plus a small
// header — an 8x reduction over raw float64.
type Quantize8 struct{}

var _ Codec = Quantize8{}

// Roundtrip implements Codec.
func (Quantize8) Roundtrip(params []float64) []float64 {
	q := QuantizeVector(params)
	return q.Dequantize()
}

// WireBytes implements Codec.
func (Quantize8) WireBytes(n int) int { return n + 80 }

// Name implements Codec.
func (Quantize8) Name() string { return "q8" }

// Quantized is an explicitly encoded 8-bit vector, exposed so tests and
// the live runtime can hold the encoded form.
type Quantized struct {
	Min   float64
	Scale float64 // (max-min)/255; 0 for a constant vector
	Data  []uint8
}

// QuantizeVector encodes params with uniform 8-bit quantization.
func QuantizeVector(params []float64) *Quantized {
	q := &Quantized{}
	q.EncodeFrom(params)
	return q
}

// EncodeFrom re-encodes params into q, reusing q.Data when its capacity
// suffices — the allocation-free path for a long-lived encoder fed from a
// parameter view. params is only read.
func (q *Quantized) EncodeFrom(params []float64) {
	if cap(q.Data) < len(params) {
		q.Data = make([]uint8, len(params))
	}
	q.Data = q.Data[:len(params)]
	q.Min, q.Scale = 0, 0
	if len(params) == 0 {
		return
	}
	minV, maxV := params[0], params[0]
	for _, v := range params[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	q.Min = minV
	q.Scale = (maxV - minV) / 255
	if q.Scale == 0 {
		for i := range q.Data {
			q.Data[i] = 0 // constant vector: all zeros decode to Min
		}
		return
	}
	inv := 1 / q.Scale
	for i, v := range params {
		b := math.Round((v - minV) * inv)
		if b < 0 {
			b = 0
		}
		if b > 255 {
			b = 255
		}
		q.Data[i] = uint8(b)
	}
}

// Dequantize reconstructs the float vector.
func (q *Quantized) Dequantize() []float64 {
	return q.DequantizeInto(make([]float64, len(q.Data)))
}

// DequantizeInto reconstructs the float vector into dst (typically a
// pooled buffer), which must have the encoded length, and returns it.
func (q *Quantized) DequantizeInto(dst []float64) []float64 {
	if len(dst) != len(q.Data) {
		panic(fmt.Sprintf("compress: dst length %d != encoded %d", len(dst), len(q.Data)))
	}
	for i, b := range q.Data {
		dst[i] = q.Min + float64(b)*q.Scale
	}
	return dst
}

// MaxError reports the worst-case reconstruction error of the encoding:
// half a bucket.
func (q *Quantized) MaxError() float64 { return q.Scale / 2 }

// TopK sends only the K largest-magnitude *deltas* against a reference
// vector the receiver already has (the model the client received); all
// other coordinates are treated as unchanged. Fraction selects K as a
// share of the vector length.
type TopK struct {
	Fraction float64 // in (0, 1]
}

var _ Codec = TopK{}

// Name implements Codec.
func (t TopK) Name() string { return fmt.Sprintf("top%.0f%%", t.Fraction*100) }

// WireBytes implements Codec: 4-byte index + 8-byte value per kept
// coordinate.
func (t TopK) WireBytes(n int) int {
	k := t.k(n)
	return 12*k + 64
}

func (t TopK) k(n int) int {
	f := t.Fraction
	if f <= 0 || f > 1 {
		f = 1
	}
	k := int(float64(n) * f)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Roundtrip implements Codec. Without the reference vector the codec
// cannot sparsify deltas, so the plain Roundtrip keeps the top-K
// magnitudes of the vector itself and zeroes the rest; prefer
// RoundtripDelta where the reference is available.
func (t TopK) Roundtrip(params []float64) []float64 {
	zero := make([]float64, len(params))
	return t.RoundtripDelta(zero, params)
}

// RoundtripDelta reconstructs what the receiver holding base would
// decode: base plus the K largest-magnitude components of params-base.
func (t TopK) RoundtripDelta(base, params []float64) []float64 {
	return t.RoundtripDeltaInto(make([]float64, len(params)), base, params)
}

// RoundtripDeltaInto is RoundtripDelta writing the reconstruction into
// dst (typically a pooled buffer) and returning it. dst must have the
// params length and may alias base but not params.
func (t TopK) RoundtripDeltaInto(dst, base, params []float64) []float64 {
	if len(base) != len(params) {
		panic(fmt.Sprintf("compress: base length %d != params %d", len(base), len(params)))
	}
	if len(dst) != len(params) {
		panic(fmt.Sprintf("compress: dst length %d != params %d", len(dst), len(params)))
	}
	n := len(params)
	k := t.k(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	mag := func(i int) float64 { return math.Abs(params[i] - base[i]) }
	sort.Slice(idx, func(a, b int) bool {
		ma, mb := mag(idx[a]), mag(idx[b])
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	copy(dst, base)
	for _, i := range idx[:k] {
		dst[i] = params[i]
	}
	return dst
}
