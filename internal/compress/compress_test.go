package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRawIsIdentity(t *testing.T) {
	in := []float64{1.5, -2.25, 0}
	out := (Raw{}).Roundtrip(in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("raw codec is lossy")
		}
	}
	if (Raw{}).WireBytes(100) != 864 {
		t.Errorf("raw wire bytes = %d", (Raw{}).WireBytes(100))
	}
	in[0] = 99
	if out[0] == 99 {
		t.Error("raw roundtrip aliases the input")
	}
}

func TestQuantize8ErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64() * 10
		}
		q := QuantizeVector(in)
		out := q.Dequantize()
		bound := q.MaxError() + 1e-12
		for i := range in {
			if math.Abs(out[i]-in[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantize8ConstantVector(t *testing.T) {
	in := []float64{3.25, 3.25, 3.25}
	out := (Quantize8{}).Roundtrip(in)
	for _, v := range out {
		if v != 3.25 {
			t.Fatalf("constant vector decoded to %v", out)
		}
	}
}

func TestQuantize8Empty(t *testing.T) {
	if out := (Quantize8{}).Roundtrip(nil); len(out) != 0 {
		t.Error("empty roundtrip broken")
	}
}

func TestQuantize8WireBytesIs8x(t *testing.T) {
	raw := (Raw{}).WireBytes(10000)
	q := (Quantize8{}).WireBytes(10000)
	ratio := float64(raw) / float64(q)
	if ratio < 7.5 || ratio > 8.5 {
		t.Errorf("compression ratio %v, want ~8", ratio)
	}
}

func TestQuantize8EndpointsExact(t *testing.T) {
	in := []float64{-5, 0, 5}
	out := (Quantize8{}).Roundtrip(in)
	// Min and max quantize exactly to buckets 0 and 255.
	if out[0] != -5 || math.Abs(out[2]-5) > 1e-9 {
		t.Errorf("endpoints decoded to %v", out)
	}
}

func TestTopKDeltaKeepsLargest(t *testing.T) {
	base := []float64{0, 0, 0, 0}
	params := []float64{0.1, -5, 0.2, 3}
	out := (TopK{Fraction: 0.5}).RoundtripDelta(base, params)
	want := []float64{0, -5, 0, 3} // two largest deltas kept
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("top-k = %v, want %v", out, want)
		}
	}
}

func TestTopKFullFractionIsLossless(t *testing.T) {
	base := []float64{1, 2, 3}
	params := []float64{4, 5, 6}
	out := (TopK{Fraction: 1}).RoundtripDelta(base, params)
	for i := range params {
		if out[i] != params[i] {
			t.Fatal("fraction 1 should be lossless")
		}
	}
}

func TestTopKWireBytesScale(t *testing.T) {
	full := (TopK{Fraction: 1}).WireBytes(1000)
	tenth := (TopK{Fraction: 0.1}).WireBytes(1000)
	if tenth >= full/5 {
		t.Errorf("top-10%% bytes %d not much smaller than full %d", tenth, full)
	}
}

func TestTopKMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(TopK{Fraction: 0.5}).RoundtripDelta([]float64{1}, []float64{1, 2})
}

func TestCodecNames(t *testing.T) {
	if (Raw{}).Name() != "raw" || (Quantize8{}).Name() != "q8" {
		t.Error("codec names wrong")
	}
	if (TopK{Fraction: 0.1}).Name() != "top10%" {
		t.Errorf("topk name = %q", (TopK{Fraction: 0.1}).Name())
	}
}
