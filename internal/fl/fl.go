// Package fl defines the common vocabulary shared by every federated
// learning algorithm in this repository: the trainable-model abstraction,
// client and server specifications, hyper-parameters (paper Tab. 2 and
// Tab. 3), the simulation environment handed to algorithms, and the
// processing-queue primitive that models server occupancy and produces the
// queueing behaviour studied in paper Fig. 9.
package fl

import (
	"fmt"

	"github.com/spyker-fl/spyker/internal/compress"
	"github.com/spyker-fl/spyker/internal/fault"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/obs/audit"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/simulation"
)

// Model is a trainable model bound to its datasets. Federated algorithms
// only ever see flat parameter vectors; Train and Evaluate hide the
// task-specific details (CNN classification or LSTM language modeling).
type Model interface {
	// NumParams reports the flat parameter count.
	NumParams() int
	// Params returns a copy of the parameters as one flat vector.
	Params() []float64
	// ParamsView returns the live flat parameter vector as a read-only
	// borrow: callers must not modify it, and its contents are only valid
	// until the model's next SetParams or Train. It exists so the hot
	// exchange paths can serialize or merge a model without first copying
	// it; anything retained longer must be copied (use Params).
	ParamsView() []float64
	// SetParams loads a flat parameter vector.
	SetParams(p []float64)
	// Train runs the given number of local epochs of SGD at rate lr over
	// the examples indexed by shard.
	Train(shard []int, epochs int, lr float64)
	// Evaluate returns the held-out average loss and accuracy. For
	// language models the accuracy is next-character accuracy and
	// exp(loss) is the perplexity.
	Evaluate() (loss, acc float64)
}

// ModelFactory builds an independent model instance. Each client and each
// server owns one; seed controls weight initialization.
type ModelFactory func(seed int64) Model

// Byzantine selects a client's attack behaviour; honest clients use
// ByzantineNone.
type Byzantine int

// Attack kinds of the Byzantine extension.
const (
	// ByzantineNone is an honest client.
	ByzantineNone Byzantine = iota
	// ByzantineSignFlip sends the received model minus three times the
	// honest update direction — model poisoning that actively reverses
	// training progress.
	ByzantineSignFlip
	// ByzantineNoise sends the received model plus large random noise.
	ByzantineNoise
	// ByzantineScaledNoise sends the received model plus Gaussian noise
	// scaled to five times the honest update's norm, so the attack tracks
	// the natural update magnitude instead of a fixed scale — large enough
	// to poison, small enough that magnitude-based outlier rejection alone
	// does not flag it the way ByzantineNoise's fixed unit noise is.
	ByzantineScaledNoise
	// ByzantineCollude makes every colluding client push the model along
	// the SAME fixed pseudo-random direction, three honest-norms per
	// update. Unlike independent noise, correlated attacks do not average
	// out across attackers, which is what makes collusion the harder case
	// for aggregation defenses.
	ByzantineCollude
)

// Absence is a window of virtual time during which a client is offline
// (device asleep, network partition, user churn). A client that receives
// a model right before or during an absence resumes training when the
// window ends and then sends a correspondingly stale update — the
// situation Spyker's staleness weighting is built for.
type Absence struct {
	From  float64 // inclusive, seconds
	Until float64 // exclusive, seconds
}

// ClientSpec describes one simulated client.
type ClientSpec struct {
	ID         int
	Region     geo.Region
	Server     int     // index into Env.Servers of the assigned server
	Shard      []int   // example indices of the client's local dataset
	TrainDelay float64 // seconds one local training takes on this client
	Epochs     int     // local epochs per update
	// Absences lists offline windows in increasing order.
	Absences []Absence
	// Byzantine selects the client's attack behaviour (default honest).
	Byzantine Byzantine
}

// pauseUntil returns the time at which a client that is ready to work at
// time t can actually proceed, skipping any absence windows containing t.
func (c *ClientSpec) pauseUntil(t float64) float64 {
	for _, a := range c.Absences {
		if t >= a.From && t < a.Until {
			t = a.Until
		}
	}
	return t
}

// ServerSpec describes one simulated server.
type ServerSpec struct {
	ID      int
	Region  geo.Region
	Clients []int // indices into Env.Clients
}

// Hyper collects every tunable of the paper (Tab. 2), the benchmarked
// processing delays (Tab. 3), and a few baseline-specific knobs.
type Hyper struct {
	// Client-side training.
	ClientLR    float64 // initial local learning rate eta_k (paper: 0.05)
	LocalEpochs int     // T_k

	// Spyker client-update aggregation (Alg. 1).
	EtaServer float64 // eta_i, server aggregation rate for client updates (0.6)

	// Spyker server-model aggregation (Alg. 2).
	Phi  float64 // sigmoid activation rate (1.5)
	EtaA float64 // server-server aggregation rate eta_a (0.6)

	// Spyker synchronization triggers.
	HInter float64 // age-drift threshold between servers (n_C/(5n))
	HIntra float64 // age-drift threshold since last synchronization (350)

	// Learning-rate decay (Sec. 4.1). Beta is the exponent of the
	// hyperbolic contribution-equalizing rule lr = base*(uBar/u_k)^Beta
	// (see spyker.DecayRate for why the paper's linear rule is replaced);
	// EtaMin floors the rate.
	DecayEnabled bool
	Beta         float64 // 1 = exact contribution equalization
	EtaMin       float64 // 1e-6

	// FedAsync staleness weighting: alpha * (1+staleness)^(-StalenessExp).
	Alpha        float64 // 0.5
	StalenessExp float64 // 0.5

	// FedAvgFraction is the share of clients FedAvg samples each round
	// (the paper's "the server selects a set of clients"); 0 or 1 means
	// full participation.
	FedAvgFraction float64

	// HierFAVG: edge rounds between two cloud aggregations.
	HierEdgeRounds int

	// Sync-Spyker: virtual seconds between synchronous server exchanges.
	SyncPeriod float64

	// RobustClipFactor > 0 enables Byzantine-robust norm clipping of
	// client-update deltas in Spyker (see spyker.Config.RobustClipFactor).
	RobustClipFactor float64

	// Token-loss recovery (see spyker.Config.TokenTimeout and
	// spyker.Config.SyncRetry). Both default to 0 = disabled, which keeps
	// fault-free schedules byte-identical to pre-recovery runs.
	TokenTimeout float64 // ring-silence seconds before token regeneration
	SyncRetry    float64 // stuck-round seconds before the holder rebroadcasts

	// Processing delays in seconds (paper Tab. 3).
	ProcSpyker     float64 // 2 ms
	ProcSyncSpyker float64 // 2 ms
	ProcFedAvg     float64 // 15 ms
	ProcHier       float64 // 15 ms
	ProcFedAsync   float64 // 2 ms
}

// DefaultHyper returns the paper's parameter values (Tab. 2 and Tab. 3)
// for a deployment with numClients clients and numServers servers.
func DefaultHyper(numClients, numServers int) Hyper {
	return Hyper{
		ClientLR:    0.05,
		LocalEpochs: 1,
		EtaServer:   0.6,
		Phi:         1.5,
		EtaA:        0.6,
		HInter:      float64(numClients) / (5 * float64(numServers)),
		HIntra:      350,

		DecayEnabled: true,
		Beta:         1,
		EtaMin:       1e-6,

		Alpha:        0.5,
		StalenessExp: 0.5,

		HierEdgeRounds: 2,
		SyncPeriod:     5,

		ProcSpyker:     0.002,
		ProcSyncSpyker: 0.002,
		ProcFedAvg:     0.015,
		ProcHier:       0.015,
		ProcFedAsync:   0.002,
	}
}

// Observer receives progress callbacks from the running algorithm. The
// experiment harness implements it to record traces and stop runs.
type Observer interface {
	// ClientUpdateProcessed fires after a server has merged one client
	// update. models must return the current parameter vectors of all
	// server models (live slices; the observer copies what it keeps).
	ClientUpdateProcessed(now float64, server, client int, models func() [][]float64)
	// QueueLength fires whenever a server's jobs-in-system count changes.
	QueueLength(now float64, server, length int)
}

// NopObserver is an Observer that ignores everything; useful in tests.
type NopObserver struct{}

// ClientUpdateProcessed implements Observer.
func (NopObserver) ClientUpdateProcessed(float64, int, int, func() [][]float64) {}

// QueueLength implements Observer.
func (NopObserver) QueueLength(float64, int, int) {}

// Env is everything an algorithm needs to build its actors on the
// simulator.
type Env struct {
	Sim        *simulation.Sim
	Net        *geo.Network
	Servers    []ServerSpec
	Clients    []ClientSpec
	NewModel   ModelFactory
	ModelBytes int // wire size of one model message (server -> client, server <-> server)
	// UpdateBytes is the wire size of a client -> server update; 0 means
	// ModelBytes. Update compression (internal/compress) shrinks only this
	// direction, the standard practice in the FL literature.
	UpdateBytes int
	// Codec, when non-nil, is applied (encode+decode) to every client
	// update before the server sees it, so the accuracy impact of lossy
	// update compression is part of the simulation.
	Codec compress.Codec
	// ServerProcMult scales per-server processing delays (see ProcFor).
	ServerProcMult []float64
	Hyper          Hyper
	Observer       Observer
	Seed           int64

	// Trace receives protocol events from the algorithm's actors
	// (internal/obs); Validate installs the no-op sink when nil, so
	// instrumentation sites can emit unconditionally behind an Enabled
	// check. Sinks only record — they never perturb the schedule.
	Trace obs.Sink
	// Metrics is the runtime metrics registry; Validate installs an empty
	// one when nil.
	Metrics *obs.Registry
	// Pool recycles model-sized buffers across the simulation's actors —
	// the shared parameter-vector memory plane. Validate installs one when
	// nil. Buffers handed out by it must be fully overwritten before use
	// and returned exactly once.
	Pool *paramvec.Pool

	// Audit, when non-nil, arms the per-client contribution audit plane
	// (internal/obs/audit) on every server that supports it: each
	// ServerCore gets its own streaming profiler, fed at delta-apply
	// time, emitting KindAudit verdicts into Trace. Auditing is passive —
	// it observes deltas and never feeds back — so an audited run's
	// event schedule is byte-identical to an unaudited one. Nil (the
	// default) skips the statistics entirely.
	Audit *audit.Config

	// Faults, when non-nil, declares the failure-injection plan for this
	// run (internal/fault). Algorithms that support injection arm their
	// crash/restart plumbing when they see it — with message loss and
	// duplication possible, buffer pooling and zero-copy update views are
	// unsound, so faulty runs trade them for plain owned copies. Nil (the
	// default) leaves every hot path and the event schedule untouched.
	Faults *fault.Plan
}

// ServerProcMultiplier optionally scales each server's processing
// delays (index = server ID; nil or 1.0 = the Tab. 3 baseline). It
// models heterogeneous server hardware — the straggler-server study puts
// a slow machine under one server.
func (e *Env) ProcFor(server int, base float64) float64 {
	if server < len(e.ServerProcMult) && e.ServerProcMult != nil {
		if m := e.ServerProcMult[server]; m > 0 {
			return base * m
		}
	}
	return base
}

// ClientUpdateBytes reports the wire size of one client update message.
func (e *Env) ClientUpdateBytes() int {
	if e.UpdateBytes > 0 {
		return e.UpdateBytes
	}
	return e.ModelBytes
}

// Validate checks structural consistency of the environment.
func (e *Env) Validate() error {
	if e.Sim == nil || e.Net == nil || e.NewModel == nil {
		return fmt.Errorf("fl: env missing sim, net, or model factory")
	}
	if len(e.Servers) == 0 || len(e.Clients) == 0 {
		return fmt.Errorf("fl: env needs at least one server and one client")
	}
	for _, s := range e.Servers {
		for _, c := range s.Clients {
			if c < 0 || c >= len(e.Clients) {
				return fmt.Errorf("fl: server %d references unknown client %d", s.ID, c)
			}
			if e.Clients[c].Server != s.ID {
				return fmt.Errorf("fl: client %d not assigned back to server %d", c, s.ID)
			}
		}
	}
	if e.Observer == nil {
		e.Observer = NopObserver{}
	}
	if e.Trace == nil {
		e.Trace = obs.Nop{}
	}
	if e.Metrics == nil {
		e.Metrics = obs.NewRegistry()
	}
	if e.Pool == nil {
		e.Pool = &paramvec.Pool{}
	}
	e.Pool.Instrument(
		e.Metrics.Gauge("sim.pool_live_vecs"),
		e.Metrics.Counter("sim.pool_recycled_total"),
	)
	return nil
}

// Algorithm is a federated-learning protocol that can be instantiated on
// an Env. Build wires up all actors and schedules the initial events; the
// caller then drives Env.Sim.
type Algorithm interface {
	Name() string
	Build(env *Env) error
}

// ModelWireBytes estimates the wire size of a model message carrying n
// float64 parameters plus framing/metadata overhead.
func ModelWireBytes(n int) int { return 8*n + 64 }

// AgeWireBytes is the wire size of an age-announcement message.
const AgeWireBytes = 24

// TokenWireBytes estimates the wire size of the Spyker token for n servers.
func TokenWireBytes(n int) int { return 16 + 8*n }

// Endpoint builds the geo endpoint of server s. Server IDs are kept in a
// distinct ID space from clients by the obs.ServerNode offset, so message
// traces name nodes unambiguously.
func (e *Env) ServerEndpoint(s int) geo.Endpoint {
	return geo.Endpoint{ID: obs.ServerNode + s, Region: e.Servers[s].Region}
}

// ClientEndpoint builds the geo endpoint of client c.
func (e *Env) ClientEndpoint(c int) geo.Endpoint {
	return geo.Endpoint{ID: c, Region: e.Clients[c].Region}
}
