package fl

import (
	"math"
	"testing"

	"github.com/spyker-fl/spyker/internal/compress"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/simulation"
)

// echoModel records training calls and returns fixed parameters.
type echoModel struct {
	params  []float64
	trained int
	lastLR  float64
}

func (m *echoModel) NumParams() int        { return len(m.params) }
func (m *echoModel) Params() []float64     { return append([]float64(nil), m.params...) }
func (m *echoModel) ParamsView() []float64 { return m.params }
func (m *echoModel) SetParams(p []float64) { m.params = append([]float64(nil), p...) }
func (m *echoModel) Train(shard []int, epochs int, lr float64) {
	m.trained++
	m.lastLR = lr
	for i := range m.params {
		m.params[i] += 1
	}
}
func (m *echoModel) Evaluate() (float64, float64) { return 0, 0 }

// clientEnv builds a minimal environment around one client.
func clientEnv() (*Env, *simulation.Sim) {
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	env := &Env{
		Sim: sim, Net: net,
		Servers:    []ServerSpec{{ID: 0, Region: geo.Paris, Clients: []int{0}}},
		Clients:    []ClientSpec{{ID: 0, Region: geo.Paris, Server: 0, TrainDelay: 0.1, Epochs: 1}},
		NewModel:   func(int64) Model { return &echoModel{params: []float64{0, 0}} },
		ModelBytes: 100,
		Observer:   NopObserver{},
	}
	return env, sim
}

func TestSimClientTrainsAndDelivers(t *testing.T) {
	env, sim := clientEnv()
	model := &echoModel{params: []float64{0, 0}}
	var gotUpdate []float64
	var gotMeta any
	var deliveredAt float64
	c := &SimClient{
		Env: env, Spec: env.Clients[0], Model: model,
		Deliver: func(id int, update []float64, meta any, _ obs.UID) {
			gotUpdate, gotMeta = update, meta
			deliveredAt = sim.Now()
		},
	}
	c.HandleModel([]float64{5, 5}, "meta-token", 0.05)
	sim.Run(10)
	if model.trained != 1 || model.lastLR != 0.05 {
		t.Fatalf("training not invoked correctly: %d, lr %v", model.trained, model.lastLR)
	}
	if gotUpdate == nil || gotUpdate[0] != 6 {
		t.Fatalf("update = %v, want trained params {6,6}", gotUpdate)
	}
	if gotMeta != "meta-token" {
		t.Errorf("meta not echoed: %v", gotMeta)
	}
	// Delivery time = train delay + intra-region latency + size/bandwidth.
	if deliveredAt < 0.1 || deliveredAt > 0.2 {
		t.Errorf("delivered at %v", deliveredAt)
	}
}

func TestSimClientAbsencePostponesReply(t *testing.T) {
	env, sim := clientEnv()
	env.Clients[0].Absences = []Absence{{From: 0, Until: 2}}
	var deliveredAt float64
	c := &SimClient{
		Env: env, Spec: env.Clients[0], Model: &echoModel{params: []float64{0}},
		Deliver: func(int, []float64, any, obs.UID) { deliveredAt = sim.Now() },
	}
	c.HandleModel([]float64{1}, nil, 0.05)
	sim.Run(10)
	if deliveredAt < 2.1 {
		t.Errorf("absent client replied at %v, want >= 2.1", deliveredAt)
	}
}

func TestSimClientCodecRoundtripsUpdate(t *testing.T) {
	env, sim := clientEnv()
	env.Codec = compress.Quantize8{}
	env.UpdateBytes = env.Codec.WireBytes(2)
	var got []float64
	c := &SimClient{
		Env: env, Spec: env.Clients[0],
		Model: &echoModel{params: []float64{0, 0}},
		Deliver: func(_ int, update []float64, _ any, _ obs.UID) {
			got = update
		},
	}
	c.HandleModel([]float64{0, 0}, nil, 0.05)
	sim.Run(10)
	if got == nil {
		t.Fatal("no delivery")
	}
	// Both trained params are 1.0 (constant vector): q8 reconstructs a
	// constant vector exactly.
	if got[0] != 1 || got[1] != 1 {
		t.Errorf("codec roundtrip = %v", got)
	}
	// The wire size must be the codec's, not the raw model size.
	if env.Net.TotalBytes(geo.ClientServer) != env.UpdateBytes {
		t.Errorf("bytes = %d, want codec size %d",
			env.Net.TotalBytes(geo.ClientServer), env.UpdateBytes)
	}
}

func TestTamperKinds(t *testing.T) {
	env, _ := clientEnv()
	received := []float64{1, 1}
	trained := []float64{2, 3}

	flip := &SimClient{Env: env, Spec: ClientSpec{ID: 1, Byzantine: ByzantineSignFlip}}
	out := flip.tamper(received, trained)
	// received - 3*(trained-received) = 1 - 3*1 = -2 and 1 - 3*2 = -5.
	if out[0] != -2 || out[1] != -5 {
		t.Errorf("sign flip = %v", out)
	}

	noise := &SimClient{Env: env, Spec: ClientSpec{ID: 2, Byzantine: ByzantineNoise}}
	n1 := noise.tamper(received, trained)
	n2 := noise.tamper(received, trained)
	if n1[0] == trained[0] && n1[1] == trained[1] {
		t.Error("noise attack returned the honest update")
	}
	if n1[0] == n2[0] && n1[1] == n2[1] {
		t.Error("noise attack is constant across calls")
	}

	honest := &SimClient{Env: env, Spec: ClientSpec{ID: 3}}
	h := honest.tamper(received, trained)
	if h[0] != 2 || h[1] != 3 {
		t.Errorf("honest tamper path = %v", h)
	}

	// Scaled noise: the perturbation's norm is exactly five honest-delta
	// norms (delta = (1,2), |delta| = sqrt(5)).
	scaled := &SimClient{Env: env, Spec: ClientSpec{ID: 4, Byzantine: ByzantineScaledNoise}}
	s := scaled.tamper(received, trained)
	d0, d1 := s[0]-received[0], s[1]-received[1]
	want := 5 * math.Sqrt(5)
	if got := math.Sqrt(d0*d0 + d1*d1); math.Abs(got-want) > 1e-9 {
		t.Errorf("scaled-noise perturbation norm = %v, want %v", got, want)
	}

	// Collusion: two different clients produce the IDENTICAL payload — the
	// direction is shared, not per-client.
	c1 := &SimClient{Env: env, Spec: ClientSpec{ID: 5, Byzantine: ByzantineCollude}}
	c2 := &SimClient{Env: env, Spec: ClientSpec{ID: 6, Byzantine: ByzantineCollude}}
	p1 := c1.tamper(received, trained)
	p2 := c2.tamper(received, trained)
	if p1[0] != p2[0] || p1[1] != p2[1] {
		t.Errorf("colluders disagree: %v vs %v", p1, p2)
	}
	if p1[0] == trained[0] && p1[1] == trained[1] {
		t.Error("collusion attack returned the honest update")
	}
}

func TestProcQueueBusyUntil(t *testing.T) {
	sim := simulation.New()
	q := NewProcQueue(sim, 0, nil)
	q.Submit(2, func() {})
	if q.BusyUntil() != 2 {
		t.Errorf("BusyUntil = %v", q.BusyUntil())
	}
}

func TestClientUpdateBytesDefault(t *testing.T) {
	env := &Env{ModelBytes: 500}
	if env.ClientUpdateBytes() != 500 {
		t.Error("default should fall back to ModelBytes")
	}
	env.UpdateBytes = 80
	if env.ClientUpdateBytes() != 80 {
		t.Error("explicit UpdateBytes ignored")
	}
}

func TestNopObserverDoesNothing(t *testing.T) {
	var o NopObserver
	o.ClientUpdateProcessed(1, 2, 3, func() [][]float64 { return nil })
	o.QueueLength(1, 2, 3)
}

func TestProcForInFL(t *testing.T) {
	env := &Env{ServerProcMult: []float64{2, 0}}
	if env.ProcFor(0, 0.01) != 0.02 {
		t.Error("multiplier not applied")
	}
	if env.ProcFor(1, 0.01) != 0.01 {
		t.Error("zero multiplier should keep the baseline")
	}
	if env.ProcFor(9, 0.01) != 0.01 {
		t.Error("out of range should keep the baseline")
	}
}
