package fl

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/nn"
)

func newTestClassifier(seed int64) (*Classifier, *data.Images) {
	ds := data.GenerateImages(data.MNISTLike(200, 100, 1))
	rng := rand.New(rand.NewSource(seed))
	ch, h, w := ds.Shape()
	conv := nn.NewConv2D(ch, h, w, 4, 3, rng)
	pool := nn.NewMaxPool2D(4, 10, 10)
	net := nn.NewNetwork(
		conv, nn.NewReLU(conv.OutSize()), pool,
		nn.NewDense(pool.OutSize(), 16, rng), nn.NewReLU(16),
		nn.NewDense(16, 10, rng),
	)
	return NewClassifier(net, ds, ds.TestSet(), 10, seed), ds
}

func TestClassifierTrainImproves(t *testing.T) {
	m, ds := newTestClassifier(1)
	shard := make([]int, ds.Len())
	for i := range shard {
		shard[i] = i
	}
	loss0, acc0 := m.Evaluate()
	for e := 0; e < 15; e++ {
		m.Train(shard, 1, 0.05)
	}
	loss1, acc1 := m.Evaluate()
	if loss1 >= loss0 {
		t.Errorf("loss did not improve: %.4f -> %.4f", loss0, loss1)
	}
	if acc1 <= acc0 || acc1 < 0.5 {
		t.Errorf("accuracy did not improve enough: %.3f -> %.3f", acc0, acc1)
	}
}

func TestClassifierParamsRoundTrip(t *testing.T) {
	m, _ := newTestClassifier(2)
	p := m.Params()
	if len(p) != m.NumParams() {
		t.Fatal("Params length mismatch")
	}
	p[0] = 123
	m.SetParams(p)
	if got := m.Params()[0]; got != 123 {
		t.Errorf("SetParams not applied: %v", got)
	}
}

func TestClassifierEmptyShardNoop(t *testing.T) {
	m, _ := newTestClassifier(3)
	before := m.Params()
	m.Train(nil, 1, 0.1)
	m.Train([]int{1, 2}, 0, 0.1)
	after := m.Params()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("no-op training moved parameters")
		}
	}
}

func TestClassifierTrainDeterministic(t *testing.T) {
	build := func() []float64 {
		m, _ := newTestClassifier(4)
		m.Train([]int{0, 1, 2, 3, 4, 5}, 2, 0.05)
		return m.Params()
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is nondeterministic")
		}
	}
}

func TestLanguageModelTrainImproves(t *testing.T) {
	txt := data.GenerateText(data.WikiTextLike(4000, 600, 1))
	rng := rand.New(rand.NewSource(1))
	m := NewLanguageModel(nn.NewCharLM(txt.Vocab(), 8, 16, rng), txt, 1)

	shard := make([]int, txt.Len())
	for i := range shard {
		shard[i] = i
	}
	loss0, _ := m.Evaluate()
	for e := 0; e < 8; e++ {
		m.Train(shard, 1, 0.3)
	}
	loss1, acc1 := m.Evaluate()
	if loss1 >= loss0 {
		t.Errorf("LM loss did not improve: %.4f -> %.4f", loss0, loss1)
	}
	// Perplexity must drop well below the uniform baseline (= vocab).
	if ppl := math.Exp(loss1); ppl >= txt.UniformPerplexity()*0.8 {
		t.Errorf("perplexity %.2f still near uniform %v", ppl, txt.UniformPerplexity())
	}
	if acc1 <= 1.0/float64(txt.Vocab()) {
		t.Errorf("next-char accuracy %.3f no better than chance", acc1)
	}
}

func TestLanguageModelParamsRoundTrip(t *testing.T) {
	txt := data.GenerateText(data.WikiTextLike(1000, 200, 2))
	rng := rand.New(rand.NewSource(2))
	m := NewLanguageModel(nn.NewCharLM(txt.Vocab(), 4, 6, rng), txt, 2)
	p := m.Params()
	p[len(p)-1] = 42
	m.SetParams(p)
	if got := m.Params()[len(p)-1]; got != 42 {
		t.Errorf("SetParams not applied: %v", got)
	}
	if m.NumParams() != len(p) {
		t.Error("NumParams mismatch")
	}
}
