package fl

import (
	"testing"

	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/simulation"
)

func TestDefaultHyperMatchesPaper(t *testing.T) {
	h := DefaultHyper(100, 4)
	if h.HInter != 5 {
		t.Errorf("HInter = %v, want n_C/(5n) = 5", h.HInter)
	}
	if h.HIntra != 350 {
		t.Errorf("HIntra = %v, want 350", h.HIntra)
	}
	if h.Phi != 1.5 || h.EtaA != 0.6 || h.EtaServer != 0.6 {
		t.Error("Tab. 2 aggregation parameters wrong")
	}
	if h.Alpha != 0.5 {
		t.Errorf("FedAsync alpha = %v", h.Alpha)
	}
	if h.ProcSpyker != 0.002 || h.ProcFedAvg != 0.015 || h.ProcHier != 0.015 ||
		h.ProcFedAsync != 0.002 || h.ProcSyncSpyker != 0.002 {
		t.Error("Tab. 3 processing delays wrong")
	}
	if h.EtaMin != 1e-6 {
		t.Errorf("EtaMin = %v", h.EtaMin)
	}
}

func TestWireSizes(t *testing.T) {
	if got := ModelWireBytes(1000); got != 8064 {
		t.Errorf("ModelWireBytes = %d", got)
	}
	if got := TokenWireBytes(4); got != 48 {
		t.Errorf("TokenWireBytes = %d", got)
	}
	if AgeWireBytes <= 0 {
		t.Error("AgeWireBytes must be positive")
	}
}

func TestEnvValidate(t *testing.T) {
	sim := simulation.New()
	net := geo.NewNetwork(sim, geo.Config{})
	factory := func(int64) Model { return nil }

	env := &Env{Sim: sim, Net: net, NewModel: factory,
		Servers: []ServerSpec{{ID: 0, Clients: []int{0}}},
		Clients: []ClientSpec{{ID: 0, Server: 0}},
	}
	if err := env.Validate(); err != nil {
		t.Errorf("valid env rejected: %v", err)
	}
	if env.Observer == nil {
		t.Error("Validate must default the observer")
	}

	bad := &Env{Sim: sim, Net: net, NewModel: factory,
		Servers: []ServerSpec{{ID: 0, Clients: []int{5}}},
		Clients: []ClientSpec{{ID: 0, Server: 0}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range client reference accepted")
	}

	mismatch := &Env{Sim: sim, Net: net, NewModel: factory,
		Servers: []ServerSpec{{ID: 0, Clients: []int{0}}},
		Clients: []ClientSpec{{ID: 0, Server: 3}},
	}
	if err := mismatch.Validate(); err == nil {
		t.Error("client/server assignment mismatch accepted")
	}

	empty := &Env{Sim: sim, Net: net, NewModel: factory}
	if err := empty.Validate(); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestEndpoints(t *testing.T) {
	env := &Env{
		Servers: []ServerSpec{{ID: 0, Region: geo.Paris}},
		Clients: []ClientSpec{{ID: 0, Region: geo.Sydney}},
	}
	se := env.ServerEndpoint(0)
	ce := env.ClientEndpoint(0)
	if se.Region != geo.Paris || ce.Region != geo.Sydney {
		t.Error("endpoint regions wrong")
	}
	if se.ID == ce.ID {
		t.Error("server and client endpoint IDs collide")
	}
}

type queueObs struct {
	samples []int
}

func (q *queueObs) ClientUpdateProcessed(float64, int, int, func() [][]float64) {}
func (q *queueObs) QueueLength(_ float64, _ int, l int) {
	q.samples = append(q.samples, l)
}

func TestProcQueueSerializesJobs(t *testing.T) {
	sim := simulation.New()
	obs := &queueObs{}
	q := NewProcQueue(sim, 0, obs)

	var doneAt []float64
	for i := 0; i < 3; i++ {
		q.Submit(1.0, func() { doneAt = append(doneAt, sim.Now()) })
	}
	sim.Run(100)
	want := []float64{1, 2, 3}
	if len(doneAt) != 3 {
		t.Fatalf("completed %d jobs", len(doneAt))
	}
	for i := range want {
		if doneAt[i] != want[i] {
			t.Errorf("job %d completed at %v, want %v", i, doneAt[i], want[i])
		}
	}
	// Queue lengths observed: 1,2,3 on arrival then 2,1,0 on completion.
	if len(obs.samples) != 6 {
		t.Fatalf("queue samples = %v", obs.samples)
	}
	if obs.samples[2] != 3 || obs.samples[5] != 0 {
		t.Errorf("queue samples = %v", obs.samples)
	}
	if q.Served() != 3 || q.Pending() != 0 {
		t.Errorf("Served=%d Pending=%d", q.Served(), q.Pending())
	}
}

func TestProcQueueIdleServerStartsImmediately(t *testing.T) {
	sim := simulation.New()
	q := NewProcQueue(sim, 0, nil)
	var at float64
	sim.Schedule(5, func() {
		q.Submit(0.5, func() { at = sim.Now() })
	})
	sim.Run(100)
	if at != 5.5 {
		t.Errorf("job completed at %v, want 5.5 (no phantom busy time)", at)
	}
}

func TestProcQueueZeroCost(t *testing.T) {
	sim := simulation.New()
	q := NewProcQueue(sim, 0, nil)
	ran := false
	q.Submit(0, func() { ran = true })
	sim.Run(1)
	if !ran {
		t.Error("zero-cost job did not run")
	}
}

func TestPauseUntil(t *testing.T) {
	spec := ClientSpec{Absences: []Absence{{From: 2, Until: 5}, {From: 8, Until: 9}}}
	cases := []struct{ in, want float64 }{
		{0, 0},   // before any absence
		{2, 5},   // exactly at the start -> pushed to the end
		{3.5, 5}, // inside the first window
		{5, 5},   // exactly at the end -> available
		{7, 7},   // between windows
		{8.5, 9}, // inside the second window
		{10, 10}, // after everything
	}
	for _, c := range cases {
		if got := spec.pauseUntil(c.in); got != c.want {
			t.Errorf("pauseUntil(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// No absences: identity.
	var free ClientSpec
	if got := free.pauseUntil(3); got != 3 {
		t.Errorf("pauseUntil without absences = %v", got)
	}
}

func TestChainedAbsences(t *testing.T) {
	// Back-to-back windows must chain: landing in the first pushes into
	// the second, which pushes past it.
	spec := ClientSpec{Absences: []Absence{{From: 1, Until: 3}, {From: 3, Until: 6}}}
	if got := spec.pauseUntil(2); got != 6 {
		t.Errorf("chained pauseUntil(2) = %v, want 6", got)
	}
}
