package fl

import (
	"math/rand"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/nn"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// Classifier adapts an nn.Network over a classification dataset to the
// Model interface. Training shuffles the shard each epoch and applies
// mini-batch SGD.
type Classifier struct {
	net       *nn.Network
	train     data.Classification
	test      data.Classification
	batchSize int
	clip      float64
	rng       *rand.Rand
}

var _ Model = (*Classifier)(nil)

// NewClassifier wraps net for federated training over train, evaluating on
// test. batchSize <= 0 defaults to 10.
func NewClassifier(net *nn.Network, train, test data.Classification, batchSize int, seed int64) *Classifier {
	if batchSize <= 0 {
		batchSize = 10
	}
	return &Classifier{
		net:       net,
		train:     train,
		test:      test,
		batchSize: batchSize,
		clip:      5,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// NumParams implements Model.
func (c *Classifier) NumParams() int { return c.net.NumParams() }

// Params implements Model.
func (c *Classifier) Params() []float64 { return c.net.Params() }

// ParamsView implements Model: a zero-copy borrow of the network's
// contiguous parameter plane.
func (c *Classifier) ParamsView() []float64 { return c.net.ParamsView() }

// SetParams implements Model.
func (c *Classifier) SetParams(p []float64) { c.net.SetParams(p) }

// Train implements Model.
func (c *Classifier) Train(shard []int, epochs int, lr float64) {
	if len(shard) == 0 || epochs <= 0 {
		return
	}
	order := make([]int, len(shard))
	copy(order, shard)
	for e := 0; e < epochs; e++ {
		c.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += c.batchSize {
			end := start + c.batchSize
			if end > len(order) {
				end = len(order)
			}
			for _, idx := range order[start:end] {
				c.net.LossAndGrad(c.train.Input(idx), c.train.Label(idx))
			}
			c.net.Step(lr, end-start, c.clip)
		}
	}
}

// Evaluate implements Model.
func (c *Classifier) Evaluate() (loss, acc float64) {
	n := c.test.Len()
	if n == 0 {
		return 0, 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		x := c.test.Input(i)
		label := c.test.Label(i)
		logits := c.net.Forward(x)
		if tensor.ArgMax(logits) == label {
			correct++
		}
		loss += nn.CrossEntropyFromLogits(logits, label)
	}
	return loss / float64(n), float64(correct) / float64(n)
}

// LanguageModel adapts an nn.CharLM over a synthetic text corpus to the
// Model interface. A shard indexes training windows; the evaluation metric
// pair is (average per-character cross entropy, next-character accuracy),
// so exp(loss) is the perplexity reported in the paper's WikiText figures.
type LanguageModel struct {
	lm   *nn.CharLM
	text *data.Text
	clip float64
	rng  *rand.Rand

	testWindows [][]int
}

var _ Model = (*LanguageModel)(nil)

// NewLanguageModel wraps lm for federated training over text.
func NewLanguageModel(lm *nn.CharLM, text *data.Text, seed int64) *LanguageModel {
	return &LanguageModel{
		lm:          lm,
		text:        text,
		clip:        5,
		rng:         rand.New(rand.NewSource(seed)),
		testWindows: text.TestWindows(),
	}
}

// NumParams implements Model.
func (m *LanguageModel) NumParams() int { return m.lm.NumParams() }

// Params implements Model.
func (m *LanguageModel) Params() []float64 { return m.lm.Params() }

// ParamsView implements Model: a zero-copy borrow of the LSTM's
// contiguous parameter plane.
func (m *LanguageModel) ParamsView() []float64 { return m.lm.ParamsView() }

// SetParams implements Model.
func (m *LanguageModel) SetParams(p []float64) { m.lm.SetParams(p) }

// Train implements Model.
func (m *LanguageModel) Train(shard []int, epochs int, lr float64) {
	if len(shard) == 0 || epochs <= 0 {
		return
	}
	order := make([]int, len(shard))
	copy(order, shard)
	for e := 0; e < epochs; e++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, wi := range order {
			if _, preds := m.lm.SeqLossAndGrad(m.text.Window(wi)); preds > 0 {
				m.lm.Step(lr, preds, m.clip)
			}
		}
	}
}

// Evaluate implements Model.
func (m *LanguageModel) Evaluate() (loss, acc float64) {
	var totalLoss float64
	var preds, correct int
	for _, w := range m.testWindows {
		l, p, c := m.lm.SeqLoss(w)
		totalLoss += l
		preds += p
		correct += c
	}
	if preds == 0 {
		return 0, 0
	}
	return totalLoss / float64(preds), float64(correct) / float64(preds)
}
