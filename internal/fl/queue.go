package fl

import (
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/simulation"
)

// ProcQueue models the single-threaded processing loop of a server: jobs
// (client updates, server models, token handling) are served in arrival
// order, each occupying the server for its processing delay (paper
// Tab. 3). The jobs-in-system count is reported to the observer, which is
// how the update-queueing behaviour of paper Fig. 9 is measured.
type ProcQueue struct {
	sim       *simulation.Sim
	server    int
	observer  Observer
	busyUntil float64
	pending   int
	served    int

	depthGauge *obs.Gauge
	depthHist  *obs.Histogram
}

// NewProcQueue creates the processing queue of one server.
func NewProcQueue(sim *simulation.Sim, server int, obs Observer) *ProcQueue {
	if obs == nil {
		obs = NopObserver{}
	}
	return &ProcQueue{sim: sim, server: server, observer: obs}
}

// Instrument mirrors the jobs-in-system count into a gauge (current
// depth) and a histogram (depth distribution over submissions). Either
// may be nil; the hooks are passive recorders.
func (q *ProcQueue) Instrument(depth *obs.Gauge, dist *obs.Histogram) {
	q.depthGauge = depth
	q.depthHist = dist
}

// Submit enqueues a job that occupies the server for proc seconds; fn runs
// at the job's completion time, i.e. all state changes the job makes
// become visible when the server has actually finished processing it.
func (q *ProcQueue) Submit(proc float64, fn func()) {
	now := q.sim.Now()
	q.pending++
	q.observer.QueueLength(now, q.server, q.pending)
	if q.depthGauge != nil {
		q.depthGauge.Set(float64(q.pending))
	}
	if q.depthHist != nil {
		q.depthHist.Observe(float64(q.pending))
	}

	start := now
	if q.busyUntil > start {
		start = q.busyUntil
	}
	done := start + proc
	q.busyUntil = done
	q.sim.ScheduleAt(done, func() {
		q.pending--
		q.served++
		q.observer.QueueLength(q.sim.Now(), q.server, q.pending)
		if q.depthGauge != nil {
			q.depthGauge.Set(float64(q.pending))
		}
		fn()
	})
}

// Pending reports jobs currently queued or in service.
func (q *ProcQueue) Pending() int { return q.pending }

// Served reports jobs completed so far.
func (q *ProcQueue) Served() int { return q.served }

// BusyUntil reports the virtual time at which the server becomes idle.
func (q *ProcQueue) BusyUntil() float64 { return q.busyUntil }
