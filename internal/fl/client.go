package fl

import (
	"math"
	"math/rand"

	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
)

// SimClient is the simulated client actor shared by the asynchronous
// algorithms (Spyker, Sync-Spyker, FedAsync): whenever the server hands it
// a model it trains locally and, after its modeled training delay, sends
// the update back to its server. meta is echoed verbatim so the protocol
// can attach whatever bookkeeping it needs (Spyker attaches the model age
// the update is based on, per Alg. 1 l. 10).
type SimClient struct {
	Env   *Env
	Spec  ClientSpec
	Model Model
	// Deliver hands the trained parameters to the server actor once the
	// update message has arrived there. uid is the causal trace context
	// minted for this update at send time (obs.UpdateUID) — Spyker threads
	// it into the core so provenance events link client, message, and
	// merge; algorithms without lineage tracking ignore it.
	Deliver func(clientID int, update []float64, meta any, uid obs.UID)

	// CopyUpdates hardens the client for failure injection: the trained
	// update is sent as an owned copy instead of a live parameter view,
	// and a model arriving while a previous one is still in its training
	// window is ignored. Both matter once messages can be lost or
	// duplicated — a restarted server re-engages every client it starved,
	// and a duplicated reply would otherwise fork a second training loop
	// whose update aliases the first one's view.
	CopyUpdates bool

	attackRNG *rand.Rand
	sent      int64 // updates sent, the per-client UID sequence
	busyUntil float64
}

// tamper replaces an honest update with the configured attack payload.
func (c *SimClient) tamper(received, trained []float64) []float64 {
	out := make([]float64, len(trained))
	switch c.Spec.Byzantine {
	case ByzantineSignFlip:
		// Reverse and amplify the honest training direction.
		for i := range out {
			out[i] = received[i] - 3*(trained[i]-received[i])
		}
	case ByzantineNoise:
		if c.attackRNG == nil {
			c.attackRNG = rand.New(rand.NewSource(int64(7919 * (c.Spec.ID + 1))))
		}
		for i := range out {
			out[i] = received[i] + c.attackRNG.NormFloat64()
		}
	case ByzantineScaledNoise:
		if c.attackRNG == nil {
			c.attackRNG = rand.New(rand.NewSource(int64(7919 * (c.Spec.ID + 1))))
		}
		// Noise whose norm is five honest-deltas: each component is drawn
		// independently, then the whole vector is rescaled.
		scale := 5 * deltaNorm(received, trained)
		var norm float64
		for i := range out {
			out[i] = c.attackRNG.NormFloat64()
			norm += out[i] * out[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for i := range out {
			out[i] = received[i] + scale*out[i]/norm
		}
	case ByzantineCollude:
		// All colluders derive the same direction from the same fixed seed
		// — deliberately NOT per-client — so their pushes add up instead of
		// cancelling.
		dir := rand.New(rand.NewSource(424242))
		scale := 3 * deltaNorm(received, trained)
		var norm float64
		for i := range out {
			out[i] = dir.NormFloat64()
			norm += out[i] * out[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for i := range out {
			out[i] = received[i] + scale*out[i]/norm
		}
	default:
		copy(out, trained)
	}
	return out
}

// deltaNorm is the L2 norm of the honest training delta, the natural
// magnitude unit the scaled attacks calibrate against. Falls back to 1
// when training changed nothing, so the attacks never degenerate to a
// no-op.
func deltaNorm(received, trained []float64) float64 {
	var s float64
	for i := range trained {
		d := trained[i] - received[i]
		s += d * d
	}
	if s == 0 {
		return 1
	}
	return math.Sqrt(s)
}

// HandleModel is invoked when a server model reaches the client. It
// performs the real local training immediately (the simulator's wall-clock
// time is free) and schedules the reply after the client's modeled
// training delay. If the client is inside an absence window, training is
// postponed to the window's end, so the eventual update is based on a
// correspondingly stale model.
func (c *SimClient) HandleModel(params []float64, meta any, lr float64) {
	if c.CopyUpdates && c.Env.Sim.Now() < c.busyUntil {
		// A duplicated reply (or a redundant restart re-engagement)
		// arrived mid-cycle; starting a second overlapping cycle would
		// permanently double this client's update rate.
		return
	}
	c.Model.SetParams(params)
	c.Model.Train(c.Spec.Shard, c.Spec.Epochs, lr)
	// The honest update is the model's live parameter view, not a copy.
	// This is safe because every protocol in this repository only hands
	// this client a new model (the next SetParams/Train) after the server
	// has consumed the previous update: Spyker/FedAsync/FedBuff/
	// Sync-Spyker reply per processed update, and the round-based
	// protocols (FedAvg, HierFAVG) only start a round after aggregating
	// all pending updates. The Byzantine and codec paths below produce
	// owned vectors anyway.
	update := c.Model.ParamsView()
	if c.Spec.Byzantine != ByzantineNone {
		update = c.tamper(params, update)
	} else if c.CopyUpdates {
		// Owned copy: under failure injection this client may retrain
		// before the server consumed the previous update (the reply was
		// lost), which would mutate the in-flight view.
		update = append([]float64(nil), update...)
	}
	if c.Env.Codec != nil {
		// Lossy update compression: the server receives the decoded
		// reconstruction, not the exact parameters.
		update = c.Env.Codec.Roundtrip(update)
	}

	now := c.Env.Sim.Now()
	start := c.Spec.pauseUntil(now)
	sendAt := c.Spec.pauseUntil(start + c.Spec.TrainDelay)
	c.busyUntil = sendAt

	// Mint the update's causal ID at its origin. The counter advances
	// unconditionally — trace context is plain state, so enabling tracing
	// never changes the schedule.
	c.sent++
	uid := obs.UpdateUID(c.Spec.ID, c.sent)

	src := c.Env.ClientEndpoint(c.Spec.ID)
	dst := c.Env.ServerEndpoint(c.Spec.Server)
	c.Env.Sim.Schedule(sendAt-now, func() {
		c.Env.Net.SendTraced(src, dst, c.Env.ClientUpdateBytes(), geo.ClientServer, uid, func() {
			c.Deliver(c.Spec.ID, update, meta, uid)
		})
	})
}
