package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Chart{Title: "test chart", XLabel: "time", YLabel: "acc"}.Render([]Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	})
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "(time)") || !strings.Contains(out, "y: acc") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from plot area")
	}
}

func TestRenderIncreasingSeriesShape(t *testing.T) {
	out := Chart{Width: 20, Height: 10}.Render([]Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}},
	})
	lines := strings.Split(out, "\n")
	// The first plotted row (top) must contain a marker near the right
	// edge, the last plotted row near the left edge.
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l[strings.Index(l, "|"):])
		}
	}
	if len(plotLines) != 10 {
		t.Fatalf("plot rows = %d", len(plotLines))
	}
	top, bottom := plotLines[0], plotLines[len(plotLines)-1]
	if strings.IndexRune(top, '*') < strings.IndexRune(bottom, '*') {
		t.Error("increasing series does not rise from left to right")
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	if out := (Chart{}).Render(nil); out != "" {
		t.Error("empty render should be empty")
	}
	if out := (Chart{}).Render([]Series{{Name: "one", X: []float64{1}, Y: []float64{1}}}); out != "" {
		t.Error("single-point series should be skipped")
	}
	// Constant series must not divide by zero.
	out := (Chart{}).Render([]Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}}})
	if out == "" || strings.Contains(out, "NaN") {
		t.Error("flat series broke rendering")
	}
}

func TestRenderFixedYRange(t *testing.T) {
	out := Chart{YMin: 0, YMax: 100, Width: 10, Height: 5}.Render([]Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{10, 20}},
	})
	if !strings.Contains(out, "100") {
		t.Error("fixed y-range labels missing")
	}
}

func TestRenderManySeriesCycleMarkers(t *testing.T) {
	series := make([]Series, 10)
	for i := range series {
		series[i] = Series{
			Name: strings.Repeat("s", i+1),
			X:    []float64{0, 1},
			Y:    []float64{float64(i), float64(i + 1)},
		}
	}
	out := (Chart{}).Render(series)
	if out == "" {
		t.Fatal("render failed")
	}
	// Marker list cycles after 8; the 9th series reuses '*'.
	if !strings.Contains(out, "* sssssssss") {
		t.Error("marker cycling broken")
	}
}
