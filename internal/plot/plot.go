// Package plot renders line charts as ASCII for the terminal, so the
// experiment harness can draw the paper's figures (accuracy vs time,
// perplexity vs updates, queue lengths) directly in bench output without
// any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// markers label the series in draw order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart configures a rendering.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 64)
	Height int // plot-area rows (default 16)
	// YMin/YMax fix the y-range; both zero = auto.
	YMin, YMax float64
}

// Render draws the series into a bordered ASCII chart with a legend.
// Series with fewer than two points are skipped. Returns "" if nothing is
// drawable.
func (c Chart) Render(series []Series) string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}

	var drawable []Series
	for _, s := range series {
		if len(s.X) >= 2 && len(s.X) == len(s.Y) {
			drawable = append(drawable, s)
		}
	}
	if len(drawable) == 0 {
		return ""
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range drawable {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		p := int((x - xmin) / (xmax - xmin) * float64(w-1))
		return clampInt(p, 0, w-1)
	}
	row := func(y float64) int {
		p := int((y - ymin) / (ymax - ymin) * float64(h-1))
		return clampInt(h-1-p, 0, h-1)
	}

	for si, s := range drawable {
		m := markers[si%len(markers)]
		// Interpolate between consecutive points so the lines read as
		// lines, not scattered dots.
		for i := 0; i+1 < len(s.X); i++ {
			c0, r0 := col(s.X[i]), row(s.Y[i])
			c1, r1 := col(s.X[i+1]), row(s.Y[i+1])
			steps := maxInt(absInt(c1-c0), absInt(r1-r0))
			if steps == 0 {
				grid[r0][c0] = m
				continue
			}
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				rr := r0 + int(math.Round(f*float64(r1-r0)))
				cc := c0 + int(math.Round(f*float64(c1-c0)))
				grid[rr][cc] = m
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	labelW := maxInt(len(yTop), len(yBot))
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g",
		strings.Repeat(" ", labelW), w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteString("\n")
	for si, s := range drawable {
		fmt.Fprintf(&b, "  %c %s", markers[si%len(markers)], s.Name)
		if (si+1)%4 == 0 {
			b.WriteString("\n")
		}
	}
	if len(drawable)%4 != 0 {
		b.WriteString("\n")
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", c.YLabel)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
