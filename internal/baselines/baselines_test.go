package baselines_test

import (
	"math"
	"testing"

	"github.com/spyker-fl/spyker/internal/baselines"
	"github.com/spyker-fl/spyker/internal/experiments"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/metrics"
)

// buildSmallEnv assembles an 8-client/2-server MNIST environment.
func buildSmallEnv(t *testing.T, seed int64) (*fl.Env, *metrics.Recorder) {
	t.Helper()
	env, rec, err := experiments.BuildEnv(experiments.Setup{
		Task:       experiments.TaskMNIST,
		NumServers: 2,
		NumClients: 8,
		Seed:       seed,
		EvalEvery:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, rec
}

func TestFedAvgRoundsAreSynchronous(t *testing.T) {
	env, rec := buildSmallEnv(t, 1)
	alg := &baselines.FedAvg{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(20)
	if alg.Rounds() < 2 {
		t.Fatalf("only %d rounds ran", alg.Rounds())
	}
	// Synchronous rounds: processed updates must be a multiple of the
	// client count bounded by the number of started rounds.
	upd := rec.Updates()
	if upd%len(env.Clients) != 0 && upd/len(env.Clients) >= alg.Rounds() {
		t.Errorf("updates %d inconsistent with %d rounds of %d clients",
			upd, alg.Rounds(), len(env.Clients))
	}
	if len(alg.GlobalParams()) == 0 {
		t.Error("no global model")
	}
}

func TestFedAsyncVersionTracksUpdates(t *testing.T) {
	env, rec := buildSmallEnv(t, 2)
	alg := &baselines.FedAsync{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(10)
	if alg.Version() == 0 {
		t.Fatal("no updates aggregated")
	}
	if alg.Version() != rec.Updates() {
		t.Errorf("version %d != observed updates %d", alg.Version(), rec.Updates())
	}
}

func TestHierFAVGCloudAggregates(t *testing.T) {
	env, _ := buildSmallEnv(t, 3)
	alg := &baselines.HierFAVG{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(30)
	if alg.CloudRounds() == 0 {
		t.Fatal("cloud never aggregated")
	}
	if len(alg.EdgeParams()) != 2 {
		t.Errorf("edge params = %d", len(alg.EdgeParams()))
	}
}

func TestSyncSpykerExchanges(t *testing.T) {
	env, rec := buildSmallEnv(t, 4)
	env.Hyper.SyncPeriod = 2
	alg := &baselines.SyncSpyker{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(15)
	if alg.Syncs() < 2 {
		t.Fatalf("only %d synchronous exchanges", alg.Syncs())
	}
	if rec.Updates() == 0 {
		t.Fatal("no client updates processed")
	}
}

// TestSyncSpykerServersConvergeAfterExchange: right after an exchange all
// servers hold the same model, so at any time the two server models must
// be either identical or only as far apart as the updates since the last
// exchange; a very short post-exchange run keeps them near-identical.
func TestSyncSpykerServersHomogenize(t *testing.T) {
	env, _ := buildSmallEnv(t, 5)
	env.Hyper.SyncPeriod = 3
	alg := &baselines.SyncSpyker{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	// Run to just past the first exchange (period 3 + exchange latency).
	env.Sim.Run(3.6)
	if alg.Syncs() == 0 {
		t.Skip("exchange not finished yet at this horizon")
	}
	params := alg.ServerParams()
	// Distance between server models should be small relative to the
	// model norm (they were identical moments ago).
	var dist, norm float64
	for i := range params[0] {
		d := params[0][i] - params[1][i]
		dist += d * d
		norm += params[0][i] * params[0][i]
	}
	if math.Sqrt(dist) > 0.5*math.Sqrt(norm) {
		t.Errorf("server models far apart right after exchange: %v vs %v",
			math.Sqrt(dist), math.Sqrt(norm))
	}
}

func TestSyncSpykerRequiresPeriod(t *testing.T) {
	env, _ := buildSmallEnv(t, 6)
	env.Hyper.SyncPeriod = 0
	alg := &baselines.SyncSpyker{}
	if err := alg.Build(env); err == nil {
		t.Fatal("zero SyncPeriod accepted")
	}
}

// TestFedAsyncStalenessDampens: with 1 client there is no staleness; the
// model should track the client update closely (weight alpha).
func TestAlgorithmsNames(t *testing.T) {
	cases := map[string]fl.Algorithm{
		"FedAvg":      &baselines.FedAvg{},
		"FedAsync":    &baselines.FedAsync{},
		"HierFAVG":    &baselines.HierFAVG{},
		"Sync-Spyker": &baselines.SyncSpyker{},
	}
	for want, alg := range cases {
		if alg.Name() != want {
			t.Errorf("Name = %q, want %q", alg.Name(), want)
		}
	}
}

func TestFedBuffBuffersAndConverges(t *testing.T) {
	env, rec := buildSmallEnv(t, 7)
	alg := &baselines.FedBuff{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(30)
	if alg.Flushes() == 0 {
		t.Fatal("buffer never flushed")
	}
	// Buffered aggregation: far fewer flushes than updates.
	if alg.Flushes()*2 > rec.Updates() {
		t.Errorf("flushes %d vs updates %d; buffering broken", alg.Flushes(), rec.Updates())
	}
	if best := rec.TraceData.BestAcc(); best < 0.5 {
		t.Errorf("FedBuff best accuracy %.2f", best)
	}
	if len(alg.GlobalParams()) == 0 {
		t.Error("no global model")
	}
}

func TestFedAvgClientSampling(t *testing.T) {
	env, rec := buildSmallEnv(t, 9)
	env.Hyper.FedAvgFraction = 0.5 // 4 of 8 clients per round
	alg := &baselines.FedAvg{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(20)
	if alg.Rounds() < 3 {
		t.Fatalf("only %d rounds", alg.Rounds())
	}
	// Each completed round contributes exactly 4 updates.
	perRound := float64(rec.Updates()) / float64(alg.Rounds()-1)
	if perRound < 3.5 || perRound > 4.5 {
		t.Errorf("~%v updates per round, want ~4", perRound)
	}
	// All clients participate over time (sampling rotates).
	zero := 0
	for c := 0; c < len(env.Clients); c++ {
		if rec.ClientUpdates[c] == 0 {
			zero++
		}
	}
	if zero > 2 {
		t.Errorf("%d clients never sampled across %d rounds", zero, alg.Rounds())
	}
}
