package baselines

import (
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// HierFAVG is the hierarchical multi-server baseline (Liu et al. 2020):
// edge servers run synchronous FedAvg rounds with their own clients, and
// every HierEdgeRounds rounds all edges synchronously ship their models to
// a cloud server that computes the data-weighted global average and
// redistributes it. The cloud is colocated with edge server 0, as the
// paper places the principal server in one of the regions.
type HierFAVG struct {
	env   *fl.Env
	edges []*hierEdge
	cloud *hierCloud
}

var _ fl.Algorithm = (*HierFAVG)(nil)

// Name implements fl.Algorithm.
func (h *HierFAVG) Name() string { return "HierFAVG" }

type hierEdge struct {
	alg     *HierFAVG
	id      int
	queue   *fl.ProcQueue
	w       []float64
	clients map[int]*fl.SimClient
	shares  map[int]float64 // within-edge data share
	weight  float64         // edge data share of the global total

	pending map[int][]float64
	round   int
}

type hierCloud struct {
	alg      *HierFAVG
	endpoint geo.Endpoint
	queue    *fl.ProcQueue
	pending  map[int][]float64
	rounds   int
}

// Build implements fl.Algorithm.
func (h *HierFAVG) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	h.env = env
	initial := env.NewModel(env.Seed).Params()

	total := 0
	for _, c := range env.Clients {
		total += len(c.Shard)
	}

	h.cloud = &hierCloud{
		alg:      h,
		endpoint: geo.Endpoint{ID: 2_000_000, Region: env.Servers[0].Region},
		queue:    fl.NewProcQueue(env.Sim, len(env.Servers), env.Observer),
		pending:  make(map[int][]float64),
	}

	h.edges = make([]*hierEdge, len(env.Servers))
	for si := range env.Servers {
		e := &hierEdge{
			alg:     h,
			id:      si,
			queue:   fl.NewProcQueue(env.Sim, si, env.Observer),
			w:       tensor.Clone(initial),
			clients: make(map[int]*fl.SimClient),
			shares:  make(map[int]float64),
			pending: make(map[int][]float64),
		}
		edgeData := 0
		for _, ci := range env.Servers[si].Clients {
			edgeData += len(env.Clients[ci].Shard)
		}
		e.weight = float64(edgeData) / float64(total)
		for _, ci := range env.Servers[si].Clients {
			spec := env.Clients[ci]
			e.shares[ci] = float64(len(spec.Shard)) / float64(edgeData)
			edge := e
			c := &fl.SimClient{
				Env:   env,
				Spec:  spec,
				Model: env.NewModel(env.Seed + int64(1000+ci)),
				Deliver: func(clientID int, update []float64, _ any, _ obs.UID) {
					// Each received client model costs the Tab. 3 HierFAVG
					// aggregation delay on the edge server's queue.
					edge.queue.Submit(env.ProcFor(edge.id, env.Hyper.ProcHier), func() {
						edge.receive(clientID, update)
					})
				},
			}
			e.clients[ci] = c
		}
		h.edges[si] = e
	}
	for _, e := range h.edges {
		e.startRound()
	}
	return nil
}

func (h *HierFAVG) params() [][]float64 {
	out := make([][]float64, len(h.edges))
	for i, e := range h.edges {
		out[i] = e.w
	}
	return out
}

func (e *hierEdge) startRound() {
	e.round++
	env := e.alg.env
	src := env.ServerEndpoint(e.id)
	// One pooled snapshot per round, recycled after the last client of the
	// edge has copied it (single-threaded simulator, so a countdown works).
	snapshot := env.Pool.Get(len(e.w))
	snapshot.CopyFrom(e.w)
	remaining := len(e.clients)
	if remaining == 0 {
		env.Pool.Put(snapshot)
		return
	}
	// Sorted walk: the send order schedules simulator events, so it must
	// not depend on map iteration order.
	for _, ci := range sortedKeys(e.clients) {
		dst := env.ClientEndpoint(ci)
		cc := e.clients[ci]
		env.Net.Send(src, dst, env.ModelBytes, geo.ClientServer, func() {
			cc.HandleModel(snapshot, nil, env.Hyper.ClientLR)
			if remaining--; remaining == 0 {
				env.Pool.Put(snapshot)
			}
		})
	}
}

func (e *hierEdge) receive(client int, update []float64) {
	env := e.alg.env
	e.pending[client] = update
	env.Observer.ClientUpdateProcessed(env.Sim.Now(), e.id, client, e.alg.params)
	if len(e.pending) < len(e.clients) {
		return
	}
	round := e.pending
	e.pending = make(map[int][]float64)
	w := paramvec.Vec(e.w)
	w.Zero()
	// Sorted walk: float accumulation order must not depend on map order.
	for _, ci := range sortedKeys(round) {
		w.AxpyInto(e.shares[ci], round[ci])
	}
	if e.round%env.Hyper.HierEdgeRounds == 0 {
		e.sendToCloud()
	} else {
		e.startRound()
	}
}

func (e *hierEdge) sendToCloud() {
	env := e.alg.env
	src := env.ServerEndpoint(e.id)
	// Pooled: the cloud holds the snapshot in pending until the global
	// round completes, then recycles it (see hierCloud.receive).
	snapshot := env.Pool.Get(len(e.w))
	snapshot.CopyFrom(e.w)
	cloud := e.alg.cloud
	env.Net.Send(src, cloud.endpoint, env.ModelBytes, geo.ServerServer, func() {
		// Each edge model costs one aggregation delay on the cloud queue.
		cloud.queue.Submit(env.Hyper.ProcHier, func() {
			cloud.receive(e.id, snapshot)
		})
	})
}

func (c *hierCloud) receive(edge int, model paramvec.Vec) {
	c.pending[edge] = model
	if len(c.pending) < len(c.alg.edges) {
		return
	}
	round := c.pending
	c.pending = make(map[int][]float64)
	env := c.alg.env
	c.rounds++
	global := env.Pool.Get(len(round[0]))
	global.Zero()
	// Sorted walk: float accumulation order must not depend on map order.
	for _, ei := range sortedKeys(round) {
		global.AxpyInto(c.alg.edges[ei].weight, round[ei])
		env.Pool.Put(round[ei])
	}
	remaining := len(c.alg.edges)
	for _, e := range c.alg.edges {
		edge := e
		dst := env.ServerEndpoint(edge.id)
		env.Net.Send(c.endpoint, dst, env.ModelBytes, geo.ServerServer, func() {
			edge.queue.Submit(env.ProcFor(edge.id, env.Hyper.ProcHier), func() {
				copy(edge.w, global)
				edge.startRound()
				if remaining--; remaining == 0 {
					env.Pool.Put(global)
				}
			})
		})
	}
}

// CloudRounds reports how many global aggregations completed.
func (h *HierFAVG) CloudRounds() int { return h.cloud.rounds }

// EdgeParams exposes the live edge models for tests.
func (h *HierFAVG) EdgeParams() [][]float64 { return h.params() }
