package baselines

import (
	"fmt"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/spyker"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// SyncSpyker is the partially synchronous Spyker variant of the paper's
// evaluation: client/server interactions stay asynchronous (same staleness
// weighting and learning-rate decay as Spyker), but servers exchange
// models with a synchronous protocol. Periodically all servers stop
// processing client updates, buffer them, broadcast their models, wait for
// every peer model, aggregate them in a deterministic order (an
// age-weighted average over server IDs, so every server ends up with the
// same model), and then drain the buffered client updates.
type SyncSpyker struct {
	env     *fl.Env
	servers []*syncServer
}

var _ fl.Algorithm = (*SyncSpyker)(nil)

// Name implements fl.Algorithm.
func (s *SyncSpyker) Name() string { return "Sync-Spyker" }

type syncServer struct {
	alg     *SyncSpyker
	id      int
	queue   *fl.ProcQueue
	w       []float64
	age     float64
	clients map[int]*fl.SimClient

	updates map[int]int
	total   int

	syncing  bool
	buffered []bufferedUpdate
	received map[int]serverModel
	syncs    int
}

type bufferedUpdate struct {
	client int
	params []float64
	age    float64
}

type serverModel struct {
	params []float64
	age    float64
}

// Build implements fl.Algorithm.
func (s *SyncSpyker) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if env.Hyper.SyncPeriod <= 0 {
		return fmt.Errorf("baselines: sync-spyker needs a positive SyncPeriod")
	}
	s.env = env
	initial := env.NewModel(env.Seed).Params()

	s.servers = make([]*syncServer, len(env.Servers))
	for si := range env.Servers {
		srv := &syncServer{
			alg:      s,
			id:       si,
			queue:    fl.NewProcQueue(env.Sim, si, env.Observer),
			w:        tensor.Clone(initial),
			clients:  make(map[int]*fl.SimClient),
			updates:  make(map[int]int),
			received: make(map[int]serverModel),
		}
		s.servers[si] = srv
		for _, ci := range env.Servers[si].Clients {
			spec := env.Clients[ci]
			server := srv
			c := &fl.SimClient{
				Env:   env,
				Spec:  spec,
				Model: env.NewModel(env.Seed + int64(1000+ci)),
				Deliver: func(clientID int, update []float64, meta any, _ obs.UID) {
					age, ok := meta.(float64)
					if !ok {
						panic(fmt.Sprintf("baselines: sync-spyker meta %T is not an age", meta))
					}
					server.deliverUpdate(clientID, update, age)
				},
			}
			srv.clients[ci] = c
			c.HandleModel(initial, float64(0), env.Hyper.ClientLR)
		}
	}

	// All servers start an exchange on the shared period; the simulator's
	// virtual clocks are perfectly synchronized, as the paper's emulation
	// assumes.
	var schedule func(t float64)
	schedule = func(t float64) {
		env.Sim.ScheduleAt(t, func() {
			// A round only starts when every server finished the previous
			// one; otherwise two rounds' models could interleave.
			allIdle := true
			for _, srv := range s.servers {
				if srv.syncing {
					allIdle = false
					break
				}
			}
			if allIdle {
				for _, srv := range s.servers {
					srv.beginSync()
				}
			}
			schedule(t + env.Hyper.SyncPeriod)
		})
	}
	schedule(env.Hyper.SyncPeriod)
	return nil
}

func (s *SyncSpyker) params() [][]float64 {
	out := make([][]float64, len(s.servers))
	for i, srv := range s.servers {
		out[i] = srv.w
	}
	return out
}

// deliverUpdate either buffers (during a synchronization, per the paper:
// "servers stop processing local updates from clients, and instead store
// them") or submits the update for processing.
func (srv *syncServer) deliverUpdate(client int, params []float64, age float64) {
	if srv.syncing {
		srv.buffered = append(srv.buffered, bufferedUpdate{client, params, age})
		return
	}
	srv.processUpdate(client, params, age)
}

func (srv *syncServer) processUpdate(client int, params []float64, age float64) {
	env := srv.alg.env
	srv.queue.Submit(env.ProcFor(srv.id, env.Hyper.ProcSyncSpyker), func() {
		srv.updates[client]++
		srv.total++
		lr := env.Hyper.ClientLR
		damp := 1.0
		if env.Hyper.DecayEnabled {
			uBar := float64(srv.total) / float64(len(srv.clients))
			lr = spyker.DecayRate(env.Hyper.ClientLR, env.Hyper.Beta,
				env.Hyper.EtaMin, float64(srv.updates[client]), uBar)
			if env.Hyper.ClientLR > 0 {
				// Same server-side dampening as Spyker: see
				// spyker.ServerCore.HandleClientUpdate.
				damp = lr / env.Hyper.ClientLR
			}
		}
		wk := spyker.StalenessWeight(srv.age, age)
		paramvec.Vec(srv.w).WeightedMergeInto(env.Hyper.EtaServer*wk*damp, params)
		srv.age++
		env.Observer.ClientUpdateProcessed(env.Sim.Now(), srv.id, client, srv.alg.params)

		src := env.ServerEndpoint(srv.id)
		dst := env.ClientEndpoint(client)
		c := srv.clients[client]
		// Pooled reply, recycled once the client copied it into its model.
		reply := env.Pool.Get(len(srv.w))
		reply.CopyFrom(srv.w)
		replyAge := srv.age
		env.Net.Send(src, dst, env.ModelBytes, geo.ClientServer, func() {
			c.HandleModel(reply, replyAge, lr)
			env.Pool.Put(reply)
		})
	})
}

// beginSync broadcasts this server's model to every peer and enters the
// buffering state.
func (srv *syncServer) beginSync() {
	env := srv.alg.env
	if srv.syncing {
		// The previous exchange is still in flight (the period is shorter
		// than the exchange latency); skip this round rather than mixing
		// two rounds' models.
		return
	}
	srv.syncing = true
	// Every model of the exchange travels in its own pooled buffer; each
	// ends up in exactly one server's received map and is recycled after
	// that server's aggregation (see maybeFinishSync).
	own := env.Pool.Get(len(srv.w))
	own.CopyFrom(srv.w)
	srv.received[srv.id] = serverModel{own, srv.age}
	src := env.ServerEndpoint(srv.id)
	for _, peer := range srv.alg.servers {
		if peer.id == srv.id {
			continue
		}
		p := peer
		dst := env.ServerEndpoint(p.id)
		snapshot := env.Pool.Get(len(srv.w))
		snapshot.CopyFrom(srv.w)
		age := srv.age
		from := srv.id
		env.Net.Send(src, dst, env.ModelBytes, geo.ServerServer, func() {
			p.receiveModel(from, snapshot, age)
		})
	}
	srv.maybeFinishSync()
}

func (srv *syncServer) receiveModel(from int, params []float64, age float64) {
	srv.received[from] = serverModel{params, age}
	srv.maybeFinishSync()
}

// maybeFinishSync completes the exchange once all peer models arrived: all
// servers deterministically compute the same age-weighted average and then
// drain their buffered client updates.
func (srv *syncServer) maybeFinishSync() {
	env := srv.alg.env
	if !srv.syncing || len(srv.received) < len(srv.alg.servers) {
		return
	}
	round := srv.received
	srv.received = make(map[int]serverModel)
	srv.queue.Submit(env.ProcFor(srv.id, env.Hyper.ProcSyncSpyker), func() {
		var totalAge float64
		for id := range srv.alg.servers {
			totalAge += round[id].age
		}
		w := paramvec.Vec(srv.w)
		w.Zero()
		if totalAge > 0 {
			for id := range srv.alg.servers {
				m := round[id]
				w.AxpyInto(m.age/totalAge, m.params)
			}
			srv.age = totalAge / float64(len(srv.alg.servers))
		} else {
			// Nothing trained anywhere yet: plain average keeps servers
			// identical.
			for id := range srv.alg.servers {
				w.AxpyInto(1/float64(len(srv.alg.servers)), round[id].params)
			}
		}
		for id := range srv.alg.servers {
			env.Pool.Put(round[id].params)
		}
		srv.syncs++
		srv.syncing = false
		buffered := srv.buffered
		srv.buffered = nil
		for _, b := range buffered {
			srv.processUpdate(b.client, b.params, b.age)
		}
	})
}

// Syncs reports the number of completed synchronous exchanges on server 0.
func (s *SyncSpyker) Syncs() int { return s.servers[0].syncs }

// ServerParams exposes the live server models for tests.
func (s *SyncSpyker) ServerParams() [][]float64 { return s.params() }
