// Package baselines implements the comparison algorithms of the paper's
// evaluation: FedAvg (synchronous single-server), FedAsync (asynchronous
// single-server), HierFAVG (synchronous hierarchical multi-server), and
// Sync-Spyker (Spyker with a synchronous server-model exchange). All run
// under the same discrete-event environment as Spyker itself.
package baselines

import (
	"fmt"
	"math"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// FedAsync is the asynchronous single-server baseline (Xie et al. 2019):
// the server merges every client update the moment it arrives, weighted by
// alpha * (1+staleness)^(-a), and immediately returns the new global model
// to that client.
type FedAsync struct {
	server *fedAsyncServer
}

var _ fl.Algorithm = (*FedAsync)(nil)

// Name implements fl.Algorithm.
func (f *FedAsync) Name() string { return "FedAsync" }

type fedAsyncServer struct {
	env     *fl.Env
	queue   *fl.ProcQueue
	w       []float64
	version int
	clients map[int]*fl.SimClient
	shares  map[int]float64 // d_k/d per client
}

// Build implements fl.Algorithm. FedAsync ignores all but the first server
// spec: it is a single-server system; every client talks to server 0
// across whatever latency separates their regions.
func (f *FedAsync) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	initial := env.NewModel(env.Seed).Params()
	s := &fedAsyncServer{
		env:     env,
		queue:   fl.NewProcQueue(env.Sim, 0, env.Observer),
		w:       tensor.Clone(initial),
		clients: make(map[int]*fl.SimClient),
		shares:  make(map[int]float64),
	}
	f.server = s

	total := 0
	for _, c := range env.Clients {
		total += len(c.Shard)
	}
	for ci := range env.Clients {
		spec := env.Clients[ci]
		spec.Server = 0 // single server system
		s.shares[ci] = float64(len(spec.Shard)) / float64(total)
		c := &fl.SimClient{
			Env:   env,
			Spec:  spec,
			Model: env.NewModel(env.Seed + int64(1000+ci)),
			Deliver: func(clientID int, update []float64, meta any, _ obs.UID) {
				ver, ok := meta.(int)
				if !ok {
					panic(fmt.Sprintf("baselines: fedasync meta %T is not a version", meta))
				}
				s.queue.Submit(env.Hyper.ProcFedAsync, func() {
					s.handleUpdate(clientID, update, ver, f.params)
				})
			},
		}
		s.clients[ci] = c
		c.HandleModel(initial, int(0), env.Hyper.ClientLR)
	}
	return nil
}

func (f *FedAsync) params() [][]float64 { return [][]float64{f.server.w} }

func (s *fedAsyncServer) handleUpdate(client int, update []float64, ver int, models func() [][]float64) {
	staleness := float64(s.version - ver)
	if staleness < 0 {
		staleness = 0
	}
	alphaT := s.env.Hyper.Alpha * math.Pow(1+staleness, -s.env.Hyper.StalenessExp)
	paramvec.Vec(s.w).WeightedMergeInto(alphaT, update)
	s.version++

	s.env.Observer.ClientUpdateProcessed(s.env.Sim.Now(), 0, client, models)

	src := s.env.ServerEndpoint(0)
	dst := s.env.ClientEndpoint(client)
	c := s.clients[client]
	// The reply travels in a pooled buffer; HandleModel copies it into the
	// client's model before returning, so it can be recycled right after.
	reply := s.env.Pool.Get(len(s.w))
	reply.CopyFrom(s.w)
	ver = s.version
	s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
		c.HandleModel(reply, ver, s.env.Hyper.ClientLR)
		s.env.Pool.Put(reply)
	})
}

// GlobalParams exposes the live global model for tests.
func (f *FedAsync) GlobalParams() []float64 { return f.server.w }

// Version exposes the number of aggregated updates for tests.
func (f *FedAsync) Version() int { return f.server.version }
