package baselines

import (
	"math"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// FedBuff is a modern buffered-asynchronous baseline beyond the paper's
// comparison set (Nguyen et al., AISTATS 2022): the single server replies
// to every client immediately (keeping them busy, like FedAsync) but
// buffers the staleness-weighted update *deltas* and only folds them into
// the global model once K of them have accumulated. Buffering trades a
// little freshness for much lower variance per aggregation.
type FedBuff struct {
	server *fedBuffServer
}

var _ fl.Algorithm = (*FedBuff)(nil)

// Name implements fl.Algorithm.
func (f *FedBuff) Name() string { return "FedBuff" }

type fedBuffServer struct {
	env     *fl.Env
	queue   *fl.ProcQueue
	w       []float64
	version int
	clients map[int]*fl.SimClient

	// lastSent remembers the exact model each client received, so the
	// server can recover the client's local delta from the returned
	// parameters.
	lastSent map[int][]float64

	buffer   []float64 // accumulated staleness-weighted deltas
	buffered int
	flushes  int
}

// Build implements fl.Algorithm. Like the other single-server baselines,
// FedBuff collapses the deployment onto server 0.
func (f *FedBuff) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	initial := env.NewModel(env.Seed).Params()
	s := &fedBuffServer{
		env:      env,
		queue:    fl.NewProcQueue(env.Sim, 0, env.Observer),
		w:        tensor.Clone(initial),
		clients:  make(map[int]*fl.SimClient),
		lastSent: make(map[int][]float64),
		buffer:   make([]float64, len(initial)),
	}
	f.server = s

	for ci := range env.Clients {
		spec := env.Clients[ci]
		spec.Server = 0
		c := &fl.SimClient{
			Env:   env,
			Spec:  spec,
			Model: env.NewModel(env.Seed + int64(1000+ci)),
			Deliver: func(clientID int, update []float64, meta any, _ obs.UID) {
				ver, _ := meta.(int)
				s.queue.Submit(env.Hyper.ProcFedAsync, func() {
					s.handleUpdate(clientID, update, ver, f.params)
				})
			},
		}
		s.clients[ci] = c
		s.lastSent[ci] = initial
		c.HandleModel(initial, int(0), env.Hyper.ClientLR)
	}
	return nil
}

func (f *FedBuff) params() [][]float64 { return [][]float64{f.server.w} }

// bufferK returns the aggregation buffer size: one tenth of the client
// population, at least 4 — the K≈10..30 regime the FedBuff paper uses for
// populations like ours.
func (s *fedBuffServer) bufferK() int {
	k := len(s.clients) / 10
	if k < 4 {
		k = 4
	}
	return k
}

func (s *fedBuffServer) handleUpdate(client int, update []float64, ver int, models func() [][]float64) {
	staleness := float64(s.version - ver)
	if staleness < 0 {
		staleness = 0
	}
	scale := math.Pow(1+staleness, -s.env.Hyper.StalenessExp)
	base := s.lastSent[client]
	paramvec.Vec(s.buffer).AddScaledDiff(scale, update, base)
	s.buffered++

	if s.buffered >= s.bufferK() {
		inv := 1 / float64(s.buffered)
		paramvec.Vec(s.w).AxpyInto(s.env.Hyper.Alpha*2*inv, s.buffer)
		paramvec.Vec(s.buffer).Zero()
		s.buffered = 0
		s.version++
		s.flushes++
	}

	s.env.Observer.ClientUpdateProcessed(s.env.Sim.Now(), 0, client, models)

	src := s.env.ServerEndpoint(0)
	dst := s.env.ClientEndpoint(client)
	c := s.clients[client]
	// The reply stays owned (not pooled): lastSent legitimately retains it
	// until the client's next update, to recover the local delta.
	reply := tensor.Clone(s.w)
	s.lastSent[client] = reply
	ver = s.version
	s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
		c.HandleModel(reply, ver, s.env.Hyper.ClientLR)
	})
}

// GlobalParams exposes the live global model for tests.
func (f *FedBuff) GlobalParams() []float64 { return f.server.w }

// Flushes reports how many buffer aggregations have been applied.
func (f *FedBuff) Flushes() int { return f.server.flushes }
