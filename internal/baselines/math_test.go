package baselines_test

import (
	"math"
	"testing"

	"github.com/spyker-fl/spyker/internal/baselines"
	"github.com/spyker-fl/spyker/internal/experiments"
	"github.com/spyker-fl/spyker/internal/fl"
)

// constModel is a deterministic fl.Model whose "training" adds a fixed
// delta to every parameter, making aggregation arithmetic predictable.
type constModel struct {
	params []float64
	delta  float64
}

func (m *constModel) NumParams() int        { return len(m.params) }
func (m *constModel) Params() []float64     { return append([]float64(nil), m.params...) }
func (m *constModel) ParamsView() []float64 { return m.params }
func (m *constModel) SetParams(p []float64) { m.params = append([]float64(nil), p...) }
func (m *constModel) Train(shard []int, epochs int, lr float64) {
	for i := range m.params {
		m.params[i] += m.delta
	}
}
func (m *constModel) Evaluate() (float64, float64) { return 0, 0 }

// buildConstEnv assembles a 1-server/2-client environment over constant
// models so the exact aggregation values can be asserted.
func buildConstEnv(t *testing.T, delta float64) *fl.Env {
	t.Helper()
	env, _, err := experiments.BuildEnv(experiments.Setup{
		Task: experiments.TaskMNIST, NumServers: 1, NumClients: 2, Seed: 1,
		EvalEvery: 1000, Horizon: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.NewModel = func(seed int64) fl.Model {
		return &constModel{params: make([]float64, 4), delta: delta}
	}
	env.ModelBytes = fl.ModelWireBytes(4)
	// Identical deterministic delays make round arithmetic exact.
	for i := range env.Clients {
		env.Clients[i].TrainDelay = 0.1
	}
	return env
}

// TestFedAvgExactAverage: after one round with two equal-size shards, the
// global model must be exactly the mean of the two client updates — both
// are initial+delta, so W = delta everywhere.
func TestFedAvgExactAverage(t *testing.T) {
	env := buildConstEnv(t, 1.0)
	// Equal shards: weights 1/2 each.
	env.Clients[0].Shard = []int{0, 1}
	env.Clients[1].Shard = []int{2, 3}
	alg := &baselines.FedAvg{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	// One round: model out (latency ~1.4ms) + train 100ms + back + 2x15ms
	// processing; run to just before the second round completes training.
	env.Sim.Run(0.2)
	got := alg.GlobalParams()
	for i, v := range got {
		if math.Abs(v-1.0) > 1e-12 {
			t.Fatalf("param %d = %v after round 1, want exactly 1.0", i, v)
		}
	}
}

// TestFedAvgWeightsByDataSize: with shards of 3 and 1 examples and client
// deltas of +1 each, the average is still 1; make the deltas differ by
// model identity instead: client updates are initial+1 but the initial
// model is 0, so weighting shows only with distinct updates. We verify
// weighting through round-2 divergence instead: after the first round the
// global is 1, the second round updates are 2, weighted mean 2.
func TestFedAvgSecondRound(t *testing.T) {
	env := buildConstEnv(t, 1.0)
	env.Clients[0].Shard = []int{0, 1, 2}
	env.Clients[1].Shard = []int{3}
	alg := &baselines.FedAvg{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(0.40)
	if alg.Rounds() < 2 {
		t.Fatalf("only %d rounds in 0.4s", alg.Rounds())
	}
	got := alg.GlobalParams()
	for i, v := range got {
		// After k full rounds the model is exactly k.
		if math.Abs(v-math.Round(v)) > 1e-9 || v < 1 {
			t.Fatalf("param %d = %v, want an integer >= 1", i, v)
		}
	}
}

// TestFedAsyncExactFirstUpdate: the first client update has staleness 0,
// so W1 = (1-alpha)W0 + alpha*(W0+delta) = W0 + alpha*delta exactly.
func TestFedAsyncExactFirstUpdate(t *testing.T) {
	env := buildConstEnv(t, 2.0)
	// Make client 1 much slower so the first arrival is unambiguous.
	env.Clients[1].TrainDelay = 5
	alg := &baselines.FedAsync{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	// First update arrives at ~0.1s + ~3ms; stop before the second.
	env.Sim.Run(0.15)
	if alg.Version() != 1 {
		t.Fatalf("version = %d, want exactly 1", alg.Version())
	}
	want := env.Hyper.Alpha * 2.0
	for i, v := range alg.GlobalParams() {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("param %d = %v, want %v", i, v, want)
		}
	}
}

// TestFedAsyncStalenessReducesWeight: a second update computed against
// version 0 arrives when the server is at version 1; its effective weight
// must be alpha/sqrt(2), not alpha.
func TestFedAsyncStalenessReducesWeight(t *testing.T) {
	env := buildConstEnv(t, 2.0)
	env.Clients[1].TrainDelay = 0.12 // arrives just after client 0
	alg := &baselines.FedAsync{}
	if err := alg.Build(env); err != nil {
		t.Fatal(err)
	}
	env.Sim.Run(0.16)
	if alg.Version() != 2 {
		t.Fatalf("version = %d, want 2", alg.Version())
	}
	alpha := env.Hyper.Alpha
	w1 := alpha * 2.0 // first update, fresh
	// Second update: client model = 0 + 2 (trained on version 0), server
	// is at w1 with version 1 -> staleness 1 -> weight alpha/sqrt(2).
	a2 := alpha * math.Pow(2, -env.Hyper.StalenessExp)
	want := (1-a2)*w1 + a2*2.0
	for i, v := range alg.GlobalParams() {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("param %d = %v, want %v", i, v, want)
		}
	}
}
