package baselines

import (
	"math/rand"
	"sort"

	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/geo"
	"github.com/spyker-fl/spyker/internal/obs"
	"github.com/spyker-fl/spyker/internal/paramvec"
	"github.com/spyker-fl/spyker/internal/tensor"
)

// FedAvg is the original synchronous single-server baseline (McMahan et
// al. 2017): every round the server samples a set of clients
// (Hyper.FedAvgFraction; default everyone), ships them the global model,
// waits for every sampled update, and replaces the model with the
// data-weighted average over the round's participants.
type FedAvg struct {
	server *fedAvgServer
}

var _ fl.Algorithm = (*FedAvg)(nil)

// Name implements fl.Algorithm.
func (f *FedAvg) Name() string { return "FedAvg" }

type fedAvgServer struct {
	env     *fl.Env
	queue   *fl.ProcQueue
	w       []float64
	clients map[int]*fl.SimClient
	shares  map[int]float64
	rng     *rand.Rand

	// round state
	pending  map[int][]float64 // client -> update of the current round
	selected map[int]bool      // clients sampled for the current round
	round    int
}

// Build implements fl.Algorithm. Like FedAsync, FedAvg collapses the
// deployment onto server 0.
func (f *FedAvg) Build(env *fl.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	initial := env.NewModel(env.Seed).Params()
	s := &fedAvgServer{
		env:     env,
		queue:   fl.NewProcQueue(env.Sim, 0, env.Observer),
		w:       tensor.Clone(initial),
		clients: make(map[int]*fl.SimClient),
		shares:  make(map[int]float64),
		rng:     rand.New(rand.NewSource(env.Seed + 31)),
		pending: make(map[int][]float64),
	}
	f.server = s

	total := 0
	for _, c := range env.Clients {
		total += len(c.Shard)
	}
	for ci := range env.Clients {
		spec := env.Clients[ci]
		spec.Server = 0
		s.shares[ci] = float64(len(spec.Shard)) / float64(total)
		c := &fl.SimClient{
			Env:   env,
			Spec:  spec,
			Model: env.NewModel(env.Seed + int64(1000+ci)),
			Deliver: func(clientID int, update []float64, _ any, _ obs.UID) {
				// Processing one received client model costs the paper's
				// Tab. 3 FedAvg aggregation delay; the per-round weighted
				// average itself is then cheap. With full participation
				// this makes round length grow linearly with the client
				// count, the server-side bottleneck Tab. 5 exposes.
				s.queue.Submit(env.Hyper.ProcFedAvg, func() {
					s.receive(clientID, update, f.params)
				})
			},
		}
		s.clients[ci] = c
	}
	s.startRound()
	return nil
}

func (f *FedAvg) params() [][]float64 { return [][]float64{f.server.w} }

// startRound samples the round's participants (the paper's "the server
// selects a set of clients"; FedAvgFraction 0 or 1 = everyone) and ships
// them the current global model.
func (s *fedAvgServer) startRound() {
	s.round++
	s.selected = s.sampleClients()
	src := s.env.ServerEndpoint(0)
	// One pooled snapshot serves the whole round; the countdown (safe:
	// the simulator is single-threaded) recycles it once the last sampled
	// client has copied it into its model.
	snapshot := s.env.Pool.Get(len(s.w))
	snapshot.CopyFrom(s.w)
	remaining := len(s.selected)
	if remaining == 0 {
		s.env.Pool.Put(snapshot)
		return
	}
	// Sorted walk: the send order schedules simulator events, so it must
	// not depend on map iteration order.
	for _, ci := range sortedKeys(s.selected) {
		dst := s.env.ClientEndpoint(ci)
		cc := s.clients[ci]
		s.env.Net.Send(src, dst, s.env.ModelBytes, geo.ClientServer, func() {
			cc.HandleModel(snapshot, nil, s.env.Hyper.ClientLR)
			if remaining--; remaining == 0 {
				s.env.Pool.Put(snapshot)
			}
		})
	}
}

// sampleClients draws the round's participant set.
func (s *fedAvgServer) sampleClients() map[int]bool {
	frac := s.env.Hyper.FedAvgFraction
	all := make([]int, 0, len(s.clients))
	//lint:sorted keys are collected and sorted just below
	for ci := range s.clients {
		all = append(all, ci)
	}
	sort.Ints(all) // deterministic base order for the seeded shuffle
	selected := make(map[int]bool, len(all))
	if frac <= 0 || frac >= 1 {
		for _, ci := range all {
			selected[ci] = true
		}
		return selected
	}
	k := int(float64(len(all)) * frac)
	if k < 1 {
		k = 1
	}
	s.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for _, ci := range all[:k] {
		selected[ci] = true
	}
	return selected
}

// receive stores one processed client update; when every sampled client
// reported, it computes the new global model (weighted over the round's
// participants) and starts the next round.
func (s *fedAvgServer) receive(client int, update []float64, models func() [][]float64) {
	s.pending[client] = update
	s.env.Observer.ClientUpdateProcessed(s.env.Sim.Now(), 0, client, models)
	if len(s.pending) < len(s.selected) {
		return
	}
	round := s.pending
	s.pending = make(map[int][]float64)
	// Sorted walks: float accumulation is not associative, so the merge
	// order must not depend on map iteration order.
	order := sortedKeys(round)
	var totalShare float64
	for _, ci := range order {
		totalShare += s.shares[ci]
	}
	w := paramvec.Vec(s.w)
	w.Zero()
	for _, ci := range order {
		w.AxpyInto(s.shares[ci]/totalShare, round[ci])
	}
	s.startRound()
}

// GlobalParams exposes the live global model for tests.
func (f *FedAvg) GlobalParams() []float64 { return f.server.w }

// Rounds exposes how many rounds have started.
func (f *FedAvg) Rounds() int { return f.server.round }
