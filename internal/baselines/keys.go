package baselines

import "sort"

// sortedKeys returns m's keys in ascending order. Map iteration order is
// randomized by the runtime, and the round-level walks of the baselines
// are order-sensitive twice over: network sends schedule discrete events
// (tie order = insertion order) and float accumulation is not
// associative, so a different walk order changes the result bits. Every
// map walk that feeds scheduling or aggregation goes through here.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	//lint:sorted keys are collected and sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
