// Command quickstart runs the smallest end-to-end Spyker deployment: 4
// geo-distributed servers, 40 clients, the MNIST-like workload, and prints
// the accuracy trace as the model converges.
package main

import (
	"fmt"
	"log"

	"github.com/spyker-fl/spyker/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	setup := experiments.Setup{
		Task:         experiments.TaskMNIST,
		NumServers:   4,
		NumClients:   40,
		NonIIDLabels: 2,
		Seed:         1,
		TargetAcc:    0.90,
		Horizon:      120,
	}
	fmt.Println("quickstart: Spyker, 4 servers x 10 clients, MNIST-like, non-IID (l=2)")
	res, err := experiments.Run("spyker", setup)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %9s %9s %8s\n", "time(s)", "updates", "loss", "acc")
	for _, p := range res.Trace {
		fmt.Printf("%8.2f %9d %9.4f %7.1f%%\n", p.Time, p.Updates, p.Loss, 100*p.Acc)
	}
	if res.ReachedTarget {
		fmt.Printf("\nreached %.0f%% accuracy after %.2f virtual seconds and %d client updates\n",
			100*setup.TargetAcc, res.TimeToTarget, res.Updates)
	} else {
		fmt.Printf("\ndid not reach %.0f%% within %.0f virtual seconds (best %.1f%%)\n",
			100*setup.TargetAcc, setup.Horizon, 100*res.Trace.BestAcc())
	}
	fmt.Printf("bytes on the wire: %d client-server, %d server-server\n",
		res.BytesClientServer, res.BytesServerServer)
	return nil
}
