// Command livetcp runs the Spyker protocol over real TCP sockets on this
// machine — no simulation: 2 servers on ephemeral localhost ports, 8
// clients training a real CNN, full token-coordinated asynchronous model
// exchange, then an evaluation of the resulting global model.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/spyker-fl/spyker/internal/data"
	"github.com/spyker-fl/spyker/internal/fl"
	"github.com/spyker-fl/spyker/internal/live"
	"github.com/spyker-fl/spyker/internal/nn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers  = 2
		clients  = 8
		duration = 2 * time.Second
	)
	ds := data.GenerateImages(data.MNISTLike(10*clients, 200, 3))
	factory := func(s int64) fl.Model {
		rng := rand.New(rand.NewSource(s))
		ch, h, w := ds.Shape()
		conv := nn.NewConv2D(ch, h, w, 4, 3, rng)
		pool := nn.NewMaxPool2D(4, 10, 10)
		net := nn.NewNetwork(
			conv, nn.NewReLU(conv.OutSize()), pool,
			nn.NewDense(pool.OutSize(), 24, rng), nn.NewReLU(24),
			nn.NewDense(24, ds.NumClasses(), rng),
		)
		return fl.NewClassifier(net, ds, ds.TestSet(), 10, s)
	}

	hyper := fl.DefaultHyper(clients, servers)
	hyper.HInter = 4
	hyper.HIntra = 80

	fmt.Printf("livetcp: %d real TCP servers + %d clients for %s of wall-clock training\n",
		servers, clients, duration)
	stats, err := live.RunCluster(live.ClusterConfig{
		NumServers: servers,
		NumClients: clients,
		Hyper:      hyper,
		NewModel:   factory,
		Shards:     data.PartitionByLabel(ds, clients, 2, 3),
		Seed:       3,
	}, duration)
	if err != nil {
		return err
	}

	fmt.Printf("updates aggregated: %v (total %d)\n", stats.UpdatesPerServer, stats.TotalUpdates())
	fmt.Printf("token syncs: %d, final model spread: %.4f, ages: %.1f\n",
		stats.SyncsTriggered, stats.ModelSpread, stats.FinalAges)

	avg := make([]float64, len(stats.FinalParams[0]))
	for _, p := range stats.FinalParams {
		for i, v := range p {
			avg[i] += v / float64(len(stats.FinalParams))
		}
	}
	eval := factory(3)
	eval.SetParams(avg)
	loss, acc := eval.Evaluate()
	fmt.Printf("global model: held-out loss %.4f, accuracy %.1f%%\n", loss, 100*acc)
	return nil
}
