// Command geodistributed reproduces the paper's headline scenario at
// example scale: clients spread over four AWS regions (Hong Kong, Paris,
// Sydney, California) with real inter-region latencies, comparing Spyker
// against the single-server FedAsync baseline both with and without the
// geographic latency — the experiment behind the paper's Tab. 6 and its
// "61% faster in geo-distributed settings" claim.
package main

import (
	"fmt"
	"log"

	"github.com/spyker-fl/spyker/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const target = 0.90
	fmt.Println("geodistributed: Spyker vs FedAsync, 48 clients / 4 servers, MNIST-like, non-IID")
	fmt.Printf("%-10s %-10s %14s %12s\n", "network", "algorithm", "time to 90%", "updates")

	type cell struct {
		network string
		uniform bool
		alg     string
	}
	var spykerLat, fedasyncLat float64
	for _, c := range []cell{
		{"AWS", false, "fedasync"},
		{"AWS", false, "spyker"},
		{"uniform", true, "fedasync"},
		{"uniform", true, "spyker"},
	} {
		setup := experiments.Setup{
			Task:         experiments.TaskMNIST,
			NumServers:   4,
			NumClients:   48,
			NonIIDLabels: 2,
			Seed:         7,
			TargetAcc:    target,
			Horizon:      240,
		}
		if c.uniform {
			setup.Latency = experiments.UniformMeanLatency()
		}
		res, err := experiments.Run(c.alg, setup)
		if err != nil {
			return err
		}
		tt, ok := res.Trace.TimeToAcc(target)
		upd, _ := res.Trace.UpdatesToAcc(target)
		if !ok {
			fmt.Printf("%-10s %-10s %14s %12s\n", c.network, res.Algorithm, "(not reached)", "-")
			continue
		}
		fmt.Printf("%-10s %-10s %13.2fs %12d\n", c.network, res.Algorithm, tt, upd)
		if c.network == "AWS" {
			if c.alg == "spyker" {
				spykerLat = tt
			} else {
				fedasyncLat = tt
			}
		}
	}
	if fedasyncLat > 0 && spykerLat > 0 {
		fmt.Printf("\nwith AWS latencies, Spyker reaches 90%% accuracy %.0f%% faster than FedAsync\n",
			100*(fedasyncLat-spykerLat)/fedasyncLat)
	}
	return nil
}
