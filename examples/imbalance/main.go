// Command imbalance explores what happens when one Spyker server carries
// far more clients than the others (the paper's Tab. 7 scenario): a
// hotspot server ages faster, its model drifts toward its own clients'
// data, and the token-triggered exchanges have to work harder to keep the
// deployment coherent.
package main

import (
	"fmt"
	"log"

	"github.com/spyker-fl/spyker/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	total := 48
	fmt.Printf("imbalance: 4 servers, %d clients, growing hotspot on server 0\n\n", total)
	fmt.Printf("%12s %12s %14s %14s\n", "hot clients", "final acc", "time to 85%", "updates")

	for _, hotShare := range []float64{0.25, 0.50, 0.65, 0.75} {
		hot := int(float64(total) * hotShare)
		rest := total - hot
		per := []int{hot, rest / 3, rest / 3, rest - 2*(rest/3)}
		setup := experiments.Setup{
			Task:             experiments.TaskMNIST,
			NumServers:       4,
			NumClients:       total,
			ClientsPerServer: per,
			NonIIDLabels:     2,
			Seed:             11,
			Horizon:          60,
			MaxUpdates:       9000,
		}
		res, err := experiments.Run("spyker", setup)
		if err != nil {
			return err
		}
		tt, ok := res.Trace.TimeToAcc(0.85)
		upd, _ := res.Trace.UpdatesToAcc(0.85)
		ttStr := "(not reached)"
		if ok {
			ttStr = fmt.Sprintf("%.2fs", tt)
		}
		fmt.Printf("%12d %11.1f%% %14s %14d\n", hot, 100*res.Trace.BestAcc(), ttStr, upd)
	}
	fmt.Println("\nexpect: larger hotspots keep accuracy but take longer to converge (paper Tab. 7)")
	return nil
}
