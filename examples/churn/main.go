// Command churn demonstrates Spyker's resilience to client churn: a
// third of the clients disappear mid-training and rejoin later, sending
// updates based on models from before their outage. The age/staleness
// machinery damps those stale updates, so accuracy keeps climbing while
// they are away and does not regress when they return.
package main

import (
	"fmt"
	"log"

	"github.com/spyker-fl/spyker/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("churn: 1/3 of clients offline for a third of the run (Spyker vs FedAsync)")
	study, err := experiments.RunChurnStudy(0.4, 21)
	if err != nil {
		return err
	}
	fmt.Println(study.Render())
	fmt.Println("rows marked * fall inside the churn window")
	return nil
}
